//! Bit-parallel boolean-semiring kernels: `u64` words end to end.
//!
//! The scalar row kernel examines one stored edge per loop iteration. For
//! BFS-style *any/pair* semirings (structure-only products, an idempotent
//! ⊕ that saturates at its annihilator) the per-edge work is pure set
//! algebra, so when the planned operand store is a
//! [`BitmapStore`](graphblas_matrix::BitmapStore) the same reduction can
//! run 64 edges at a time: AND a row's bitmap window against the packed
//! input words, recover the scalar rank for the Table 1 bookkeeping, and
//! stop at the first set word for the early-exit semirings. The tiled
//! [`BitmapStore`](graphblas_matrix::BitmapStore) hands each row a
//! *windowed* word span (`RowAccess::row_word_span`: a start word plus the
//! words its tile actually allocated), so the word loops here run over the
//! window — not `⌈n_cols/64⌉` padded words — and process word groups of
//! up to 4 `u64`s per iteration (autovectorizable). This module holds the
//! pieces the kernel faces dispatch to:
//!
//! * [`BitFrontier`] — a dense bitmap frontier with a popcount-backed nnz,
//!   convertible to/from [`Vector<bool>`] under the same §6.3
//!   [`ConvertState`] debounce the scalar frontier uses;
//! * `FrontierWords` — the kernel-facing packed operand: dense words, or a
//!   compressed sorted `(word_index, word)` list (roaring-lite) when the
//!   frontier is sparse enough that scanning only its nonzero words beats
//!   scanning every window word on a huge graph;
//! * `BitPull` / `bit_pull_ctx` — the per-call context of the bit pull
//!   path: the packed input plus the semiring facts (constant product
//!   hint, break-on-hit) the word loop relies on;
//! * `bit_reduce_row` / `bit_reduce_row_first_hit` — the word-wise row
//!   reductions, value- and counter-equivalent to the scalar `reduce_row`
//!   twins by construction (the CSR rank of the first hit column recovers
//!   exactly the scalar `examined` count). Each is a *hybrid*: rows whose
//!   degree is below their window-overlap word count — and rows whose tile
//!   allocated no words at all — take a scalar probe of the CSR columns
//!   against the frontier bits instead of the word scan, so a missing word
//!   surface degrades gracefully rather than panicking;
//! * `UnvisitedIndex` — one level of summary words over the
//!   (complement-adjusted) mask words, so late-level pull scans skip
//!   64-row regions that are already fully visited;
//! * `bit_push_parts` — the push-face arm: OR each source row's word
//!   span into per-chunk bitmaps (the SpaMerge chunk machinery) and merge
//!   word-wise, replacing the expand/sort/dedup of the structure-only
//!   column kernel (rows without a word surface scatter their columns
//!   bit-by-bit instead).
//!
//! **The load-bearing invariant**: every function here charges the same
//! `matrix`/`vector`/`mask`/`sort` access amounts the scalar kernel
//! charges for the same call — the 64× win is *visible only* through the
//! separate `bit_word_ops` telemetry counter (zeroed by both counter
//! projections), because the equivalence tests compare bitmap-format runs
//! against the `Fixed(Csr)` scalar oracle snapshot-for-snapshot.
//! `Descriptor::bit_kernels(false)` switches all of this off and is the
//! oracle arm of `tests/prop_core.rs`.

use crate::descriptor::Descriptor;
use crate::mask::Mask;
use crate::ops::{Monoid, Scalar, Semiring};
use crate::vector::{ConvertState, DenseVector, SparseVector, Vector};
use graphblas_matrix::RowAccess;
use graphblas_primitives::counters::AccessCounters;
use graphblas_primitives::{sort, BitVec};
use rayon::prelude::*;

/// A frontier held as a dense bitmap with a cached popcount `nnz` — the
/// boolean-semiring analogue of the sparse/dense [`Vector`] pair, sized
/// `dim/64` words regardless of occupancy.
///
/// The bit kernels themselves consume packed words directly (see
/// `bit_pull_ctx`); `BitFrontier` is the *algorithm-facing* frontier
/// object: BFS bookkeeping, tests, and the bench studies move between it
/// and [`Vector<bool>`] with [`BitFrontier::from_vector`] /
/// [`BitFrontier::into_vector`], the latter applying the same §6.3
/// [`ConvertState`] hysteresis the scalar frontier uses so the storage
/// (and hence direction) signal is unchanged.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitFrontier {
    bits: BitVec,
    nnz: usize,
}

impl BitFrontier {
    /// An empty frontier over `dim` vertices.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        Self {
            bits: BitVec::new(dim),
            nnz: 0,
        }
    }

    /// Pack a boolean vector's explicit entries into a bitmap.
    #[must_use]
    pub fn from_vector(v: &Vector<bool>) -> Self {
        let mut bits = BitVec::new(v.dim());
        let mut nnz = 0usize;
        for (i, _) in v.iter_explicit() {
            if bits.set(i as usize) {
                nnz += 1;
            }
        }
        Self { bits, nnz }
    }

    /// Unpack into a [`Vector<bool>`] (fill `false`), then apply the §6.3
    /// storage hysteresis via the caller's [`ConvertState`] — exactly the
    /// debounce a scalar frontier would see, so push/pull dispatch on the
    /// result is unchanged.
    #[must_use]
    pub fn into_vector(self, state: &mut ConvertState, threshold: f64) -> Vector<bool> {
        let ids: Vec<u32> = self.bits.iter_ones().map(|i| i as u32).collect();
        let vals = vec![true; ids.len()];
        let mut v = Vector::from_sparse(self.bits.len(), false, ids, vals);
        v.convert(state, threshold);
        v
    }

    /// Number of vertices covered.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.bits.len()
    }

    /// Number of set bits (cached; no scan).
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Whether vertex `i` is in the frontier.
    #[must_use]
    pub fn contains(&self, i: usize) -> bool {
        self.bits.get(i)
    }

    /// Insert vertex `i`; returns `true` when newly inserted.
    pub fn insert(&mut self, i: usize) -> bool {
        let fresh = self.bits.set(i);
        if fresh {
            self.nnz += 1;
        }
        fresh
    }

    /// The backing bitmap.
    #[must_use]
    pub fn bits(&self) -> &BitVec {
        &self.bits
    }

    /// The backing `u64` words (tail bits beyond `dim` are zero).
    #[must_use]
    pub fn words(&self) -> &[u64] {
        self.bits.words()
    }
}

/// The packed operand a bit kernel scans: `is_explicit` of the input
/// vector, one bit per column, in one of two shapes.
///
/// `Dense` is the flat `⌈dim/64⌉`-word image. `Compressed` is the
/// roaring-lite form — only the nonzero words, as a sorted
/// `(word_index, word)` list — chosen by [`FrontierWords::from_dense`]
/// when the frontier occupies at most 1 word in
/// [`FrontierWords::COMPRESS_FACTOR`]: on a huge graph a one-vertex
/// frontier then costs each row a handful of pair probes instead of a
/// full window scan. Both shapes answer the same queries, and the kernels
/// charge identical `matrix`/`vector` counts either way (only the
/// `bit_word_ops` telemetry sees the difference).
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum FrontierWords {
    /// Flat word image, indexed by word number.
    Dense(Vec<u64>),
    /// Sorted `(word_index, word)` pairs, nonzero words only.
    Compressed(Vec<(u32, u64)>),
}

impl FrontierWords {
    /// Compress when nonzero words × this factor still undercuts the
    /// dense word count — i.e. the frontier touches ≤ 1/4 of the words.
    pub(crate) const COMPRESS_FACTOR: usize = 4;

    /// Wrap a dense word image, compressing when sparse enough.
    pub(crate) fn from_dense(words: Vec<u64>) -> Self {
        let nzw = words.iter().filter(|&&w| w != 0).count();
        if nzw * Self::COMPRESS_FACTOR <= words.len() {
            FrontierWords::Compressed(
                words
                    .iter()
                    .enumerate()
                    .filter(|&(_, &w)| w != 0)
                    .map(|(g, &w)| (g as u32, w))
                    .collect(),
            )
        } else {
            FrontierWords::Dense(words)
        }
    }

    /// Whether bit `j` (an input slot / column id) is set.
    #[inline]
    pub(crate) fn contains(&self, j: usize) -> bool {
        let (g, b) = (j / 64, (j % 64) as u32);
        match self {
            FrontierWords::Dense(w) => w.get(g).is_some_and(|&w| w >> b & 1 != 0),
            FrontierWords::Compressed(p) => p
                .binary_search_by_key(&(g as u32), |&(i, _)| i)
                .is_ok_and(|k| p[k].1 >> b & 1 != 0),
        }
    }

    /// How many frontier words a scan of window `[start, start+width)`
    /// would visit — the word-path cost the hybrid row kernels weigh
    /// against a `degree`-probe scalar pass.
    #[inline]
    pub(crate) fn overlap(&self, start: usize, width: usize) -> usize {
        match self {
            FrontierWords::Dense(_) => width,
            FrontierWords::Compressed(p) => {
                let lo = p.partition_point(|&(i, _)| (i as usize) < start);
                let hi = p.partition_point(|&(i, _)| (i as usize) < start + width);
                hi - lo
            }
        }
    }

    /// Scan a row's word window for the first AND hit, in word groups of
    /// up to 4 (the dense inner loop is a plain OR-of-ANDs the compiler
    /// autovectorizes). Returns `(scanned, hit)` where `scanned` counts
    /// frontier words visited up to and including the hit word (the
    /// `bit_word_ops` charge) and `hit` is the first set column, lowest
    /// word then lowest bit — exactly the scalar loop's first explicit
    /// neighbor, because CSR rows are column-sorted.
    #[inline]
    pub(crate) fn scan_window(&self, start: usize, row: &[u64]) -> (u64, Option<usize>) {
        match self {
            FrontierWords::Dense(words) => {
                let vw = &words[start..start + row.len()];
                let mut scanned = 0u64;
                let mut t = 0usize;
                while t < row.len() {
                    let end = (t + 4).min(row.len());
                    let mut any = 0u64;
                    for k in t..end {
                        any |= row[k] & vw[k];
                    }
                    if any != 0 {
                        for (k, (&rw, &fw)) in row[t..end].iter().zip(&vw[t..end]).enumerate() {
                            let and = rw & fw;
                            if and != 0 {
                                scanned += k as u64 + 1;
                                let j = (start + t + k) * 64 + and.trailing_zeros() as usize;
                                return (scanned, Some(j));
                            }
                        }
                        unreachable!("group OR was nonzero");
                    }
                    scanned += (end - t) as u64;
                    t = end;
                }
                (scanned, None)
            }
            FrontierWords::Compressed(p) => {
                let lo = p.partition_point(|&(i, _)| (i as usize) < start);
                let mut scanned = 0u64;
                for &(idx, fw) in &p[lo..] {
                    let idx = idx as usize;
                    if idx >= start + row.len() {
                        break;
                    }
                    scanned += 1;
                    let and = row[idx - start] & fw;
                    if and != 0 {
                        let j = idx * 64 + and.trailing_zeros() as usize;
                        return (scanned, Some(j));
                    }
                }
                (scanned, None)
            }
        }
    }
}

/// Per-call context of the bit pull path: the packed input, plus the two
/// semiring facts the word loop exploits.
pub(crate) struct BitPull<Y> {
    /// `is_explicit` of the input vector, one bit per column.
    pub(crate) words: FrontierWords,
    /// The constant every (stored entry ⊗ explicit input) product equals.
    pub(crate) hint: Y,
    /// Whether ⊕ saturates at `hint` (annihilator), i.e. the scalar loop
    /// would break on the first explicit hit under `early_exit`.
    pub(crate) break_on_hit: bool,
}

/// Build the bit pull context when the call qualifies, else `None` (the
/// caller falls back to the scalar kernel).
///
/// Qualifying means: the descriptor opts in (`bit_kernels` *and*
/// `structure_only`), the served store exposes a word surface
/// (`RowAccess::has_row_words` — only the bitmap store does), the
/// semiring declares a constant product hint `h`, and the ⊕ monoid
/// satisfies `identity ⊕ h = h` and `h ⊕ h = h` — exactly what makes "any
/// explicit hit ⇒ row reduces to `h`, no hit ⇒ identity" the full
/// reduction. Packing the operand charges one `bit_word_ops` per word.
pub(crate) fn bit_pull_ctx<A, X, Y, S, M>(
    s: S,
    op: &M,
    v: &DenseVector<X>,
    desc: &Descriptor,
    counters: Option<&AccessCounters>,
) -> Option<BitPull<Y>>
where
    A: Scalar,
    X: Scalar,
    Y: Scalar,
    S: Semiring<A, X, Y>,
    M: RowAccess<A>,
{
    if !desc.bit_kernels || !desc.structure_only || !op.has_row_words() {
        return None;
    }
    let hint = s.product_hint()?;
    let add = s.add_monoid();
    let identity = add.identity();
    if add.op(identity, hint) != hint || add.op(hint, hint) != hint {
        return None;
    }
    let break_on_hit = add.annihilator() == Some(hint);
    let words = pack_frontier(v, counters);
    Some(BitPull {
        words,
        hint,
        break_on_hit,
    })
}

/// Pack a dense vector into [`FrontierWords`], compressing sparse
/// frontiers — the packing the bit kernels consume. The charge is the
/// dense word count (one `bit_word_ops` per packed word) regardless of
/// the shape chosen, matching [`pack_explicit_words`].
pub(crate) fn pack_frontier<X: Scalar>(
    v: &DenseVector<X>,
    counters: Option<&AccessCounters>,
) -> FrontierWords {
    FrontierWords::from_dense(pack_explicit_words(v, counters))
}

/// Pack `is_explicit` of a dense vector into `u64` words (bit `j` set iff
/// slot `j` is explicit). Charges one `bit_word_ops` per output word.
pub(crate) fn pack_explicit_words<X: Scalar>(
    v: &DenseVector<X>,
    counters: Option<&AccessCounters>,
) -> Vec<u64> {
    let n = v.dim();
    let mut words = vec![0u64; n.div_ceil(64)];
    for (g, w) in words.iter_mut().enumerate() {
        let start = g * 64;
        let end = (start + 64).min(n);
        let mut bits = 0u64;
        for j in start..end {
            if v.is_explicit(j) {
                bits |= 1u64 << (j - start);
            }
        }
        *w = bits;
    }
    if let Some(c) = counters {
        c.add_bit_word_ops(words.len() as u64);
    }
    words
}

/// The first explicit hit of row `i` and the words scanned finding it,
/// via whichever of the two equivalent passes is cheaper:
///
/// * **word path** — when the row has a word window and the frontier
///   overlaps it in at most `degree` words, AND the window against the
///   frontier ([`FrontierWords::scan_window`], word groups of 4); the hit
///   column's CSR rank (`binary_search` of the sorted row) is the scalar
///   loop's 1-based `examined` position;
/// * **scalar probe** — when the window scan would cost more words than
///   the row has edges, or the row's tile allocated no words at all
///   (gating and store state disagreeing is *handled*, not a panic):
///   probe each stored column against the frontier bits. Charges zero
///   `bit_word_ops`; the hit rank is the probe position itself.
///
/// Both passes return the same `(rank, column)` because CSR rows are
/// column-sorted and the word scan hits lowest-word-lowest-bit first.
#[inline]
fn first_hit<A, M>(op: &M, fw: &FrontierWords, i: usize) -> (u64, Option<(u64, usize)>)
where
    A: Scalar,
    M: RowAccess<A>,
{
    if let Some((start, row)) = op.row_word_span(i) {
        if fw.overlap(start, row.len()) <= op.degree(i) {
            let (scanned, hit) = fw.scan_window(start, row);
            let hit = hit.map(|j| {
                let rank = match op.row(i).binary_search(&(j as u32)) {
                    Ok(pos) => pos as u64 + 1,
                    // Bitmap and payload disagree (impossible by
                    // construction): charge the whole row rather than
                    // undercount.
                    Err(_) => op.degree(i) as u64,
                };
                (rank, j)
            });
            return (scanned, hit);
        }
    }
    for (k, &j) in op.row(i).iter().enumerate() {
        if fw.contains(j as usize) {
            return (0, Some((k as u64 + 1, j as usize)));
        }
    }
    (0, None)
}

/// Word-wise reduction of one operand row — the bit twin of the scalar
/// `reduce_row` under a `BitPull` context.
///
/// Finds the first explicit hit via [`first_hit`] (word window or scalar
/// probe, whichever is cheaper for this row); any hit means the row
/// reduces to the hint (the context's monoid laws). The *charged*
/// `examined` count replays the scalar loop exactly:
///
/// * early-exit break (context says ⊕ saturates at the hint, caller says
///   `early_exit`): the scalar loop stops at the first explicit hit, so
///   its CSR rank is charged;
/// * otherwise (or no hit): the scalar loop walks the whole row, so the
///   full `degree(i)` is charged even though the value needed one word.
#[inline]
pub(crate) fn bit_reduce_row<A, Y, M>(
    op: &M,
    ctx: &BitPull<Y>,
    i: usize,
    identity: Y,
    early_exit: bool,
    counters: Option<&AccessCounters>,
) -> Y
where
    A: Scalar,
    Y: Scalar,
    M: RowAccess<A>,
{
    // Per-row checkpoint, mirroring the scalar `reduce_row`.
    if !crate::exec::live(counters) {
        return identity;
    }
    let (scanned, hit) = first_hit(op, &ctx.words, i);
    let examined = match hit {
        Some((rank, _)) if early_exit && ctx.break_on_hit => rank,
        _ => op.degree(i) as u64,
    };
    if let Some(c) = counters {
        c.add_matrix(examined);
        c.add_vector(examined + 1);
        c.add_bit_word_ops(scanned);
    }
    if hit.is_some() {
        ctx.hint
    } else {
        identity
    }
}

/// Word-wise first-hit reduction — the bit twin of the fused pipeline's
/// `reduce_row_first_hit`, and fully generic over the semiring (no hint
/// needed): the CSR rank of the first hit indexes straight into the row's
/// value slice, so the single product `a ⊗ v(j)` is computed exactly as
/// the scalar loop would. `fw` is the packed input from `pack_frontier`.
/// Charges `examined = rank` (the scalar loop breaks unconditionally on
/// the first explicit hit) or `degree(i)` when the row has none.
#[inline]
pub(crate) fn bit_reduce_row_first_hit<A, X, Y, S, M>(
    s: S,
    op: &M,
    fw: &FrontierWords,
    v: &DenseVector<X>,
    i: usize,
    identity: Y,
    counters: Option<&AccessCounters>,
) -> Y
where
    A: Scalar,
    X: Scalar,
    Y: Scalar,
    S: Semiring<A, X, Y>,
    M: RowAccess<A>,
{
    let add = s.add_monoid();
    let (scanned, hit) = first_hit(op, fw, i);
    let (acc, examined) = match hit {
        Some((rank, j)) => {
            // rank is 1-based among the row's stored entries, ascending by
            // column — identical to the CSR order, so rank-1 indexes the
            // stored value of the hit entry.
            let a = op.row_values(i)[(rank - 1) as usize];
            (add.op(identity, s.mult(a, v.get(j))), rank)
        }
        None => (identity, op.degree(i) as u64),
    };
    if let Some(c) = counters {
        c.add_matrix(examined);
        c.add_vector(examined + 1);
        c.add_bit_word_ops(scanned);
    }
    acc
}

/// One level of summary words over a mask's (complement-adjusted) words:
/// bit `j` of `summary[q]` is set iff allowed-word `q*64 + j` has any
/// allowed row. The masked bit pull iterates only the live 64-row groups,
/// so a level-k BFS scan skips regions whose rows are all visited — the
/// *unvisited index* of the bit pull path.
///
/// Counter-neutral by construction: the scalar kernel charges `mask(M)` in
/// bulk for the same information and does no per-row work on disallowed
/// rows, so skipping them wholesale changes `bit_word_ops` telemetry only
/// (one per mask word + one per summary word, charged at build).
pub(crate) struct UnvisitedIndex<'a> {
    words: &'a [u64],
    complement: bool,
    tail_mask: u64,
    summary: Vec<u64>,
}

impl<'a> UnvisitedIndex<'a> {
    /// Build the summary from a mask's word surface.
    pub(crate) fn build(mask: &Mask<'a>, counters: Option<&AccessCounters>) -> Self {
        let (words, complement) = mask.word_view();
        let dim = mask.dim();
        let tail_mask = if dim.is_multiple_of(64) {
            u64::MAX
        } else {
            (1u64 << (dim % 64)) - 1
        };
        let mut summary = vec![0u64; words.len().div_ceil(64)];
        for g in 0..words.len() {
            if allowed_word(words, complement, tail_mask, g) != 0 {
                summary[g / 64] |= 1u64 << (g % 64);
            }
        }
        if let Some(c) = counters {
            c.add_bit_word_ops((words.len() + summary.len()) as u64);
        }
        Self {
            words,
            complement,
            tail_mask,
            summary,
        }
    }

    /// The allowed-row word for 64-row group `g` (complement applied,
    /// tail-masked to the mask's dimension).
    pub(crate) fn allowed_word(&self, g: usize) -> u64 {
        allowed_word(self.words, self.complement, self.tail_mask, g)
    }

    /// Indices of groups with at least one allowed row, ascending.
    pub(crate) fn live_groups(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for (q, &sw) in self.summary.iter().enumerate() {
            let mut bits = sw;
            while bits != 0 {
                let j = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                out.push(q * 64 + j);
            }
        }
        out
    }
}

fn allowed_word(words: &[u64], complement: bool, tail_mask: u64, g: usize) -> u64 {
    let w = words[g];
    if complement {
        let inv = !w;
        if g + 1 == words.len() {
            inv & tail_mask
        } else {
            inv
        }
    } else {
        // Plain mask words keep their tail zero by the BitVec invariant.
        w
    }
}

/// The push-face bit arm: when the structure-only sort-based column kernel
/// runs over a word-surfaced store, the expand → radix-sort → dedup chain
/// is equivalent to OR-ing each source row's word span into an output
/// bitmap and reading off the set bits. Returns the pre-filter `(ids,
/// vals)` parts (the caller applies the usual mask/identity filter), or
/// `None` when the call doesn't qualify.
///
/// Parallelism reuses the SpaMerge chunk machinery: the frontier is cut
/// into expansion-balanced chunks (`spa_chunk_ranges`, boundaries derived
/// from sizes only), each chunk ORs into a private word buffer, and the
/// buffers fold word-wise in chunk order — bit-identical at any lane
/// count because OR is commutative and the fold order is fixed.
///
/// Charges replicate the scalar structure-only sort path exactly: one
/// `matrix` access per expanded edge and the same radix `sort` traffic
/// (the work the bit path *actually* skips shows up as the gap between
/// those charges and `bit_word_ops`).
pub(crate) fn bit_push_parts<A, X, Y, S, M>(
    s: S,
    op_t: &M,
    v: &SparseVector<X>,
    desc: &Descriptor,
    counters: Option<&AccessCounters>,
) -> Option<(Vec<u32>, Vec<Y>)>
where
    A: Scalar,
    X: Scalar,
    Y: Scalar,
    S: Semiring<A, X, Y>,
    M: RowAccess<A> + Sync,
{
    if !desc.bit_kernels || !desc.structure_only || !op_t.has_row_words() {
        return None;
    }
    let hint = s.product_hint()?;
    let (offsets, total) = crate::ops_mxv::expansion_offsets(op_t, v);
    if let Some(c) = counters {
        // Same bulk charges as expand_keys_only + the key-only radix sort.
        c.add_matrix(total as u64);
        c.add_sort(total as u64 * sort::passes_for(op_t.n_rows().max(1) as u32 - 1) as u64);
    }
    let wpr = op_t.n_cols().div_ceil(64);
    let ids_ref = v.ids();
    let chunks: Vec<Vec<u64>> = crate::ops_mxv::spa_chunk_ranges(&offsets, total)
        .into_par_iter()
        .map(|(s0, s1)| {
            let mut buf = vec![0u64; wpr];
            // Per-chunk checkpoint: bail with an empty word image.
            if !crate::exec::live(counters) {
                return buf;
            }
            let mut word_ops = 0u64;
            for &id in &ids_ref[s0..s1] {
                let src = id as usize;
                let cols = op_t.row(src);
                if cols.is_empty() {
                    continue;
                }
                let w0 = cols[0] as usize / 64;
                let w1 = cols[cols.len() - 1] as usize / 64;
                match op_t.row_word_span(src) {
                    Some((start, rw)) => {
                        // The row's stored columns all fall inside its tile
                        // window, so `w0..=w1 ⊆ start..start+rw.len()`.
                        for (slot, &r) in buf[w0..=w1].iter_mut().zip(&rw[w0 - start..]) {
                            *slot |= r;
                        }
                        word_ops += (w1 - w0 + 1) as u64;
                    }
                    // No word surface for this row (gating and store state
                    // disagree): scatter the columns bit-by-bit — the
                    // scalar-equivalent fallback, no panic.
                    None => {
                        for &j in cols {
                            buf[j as usize / 64] |= 1u64 << (j % 64);
                        }
                    }
                }
            }
            if let Some(c) = counters {
                c.add_bit_word_ops(word_ops);
            }
            buf
        })
        .collect();
    let mut union = vec![0u64; wpr];
    for part in &chunks {
        for (u, &p) in union.iter_mut().zip(part.iter()) {
            *u |= p;
        }
    }
    if let Some(c) = counters {
        // Word-wise chunk fold plus the output-extraction scan.
        c.add_bit_word_ops((chunks.len() as u64 + 1) * wpr as u64);
    }
    let mut ids = Vec::new();
    for (g, &w) in union.iter().enumerate() {
        let mut bits = w;
        while bits != 0 {
            let b = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            ids.push((g * 64 + b) as u32);
        }
    }
    let vals = vec![hint; ids.len()];
    Some((ids, vals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::BoolStructure;
    use graphblas_matrix::{BitmapStore, Coo, Csr};
    use std::sync::Arc;

    fn bitmap_3x70() -> BitmapStore<bool> {
        let mut coo = Coo::new(3, 70);
        for &(i, j) in &[(0u32, 0u32), (0, 63), (0, 64), (1, 69), (2, 1)] {
            coo.push(i, j, true);
        }
        let csr = Arc::new(Csr::from_coo(&coo));
        BitmapStore::try_from_shared(csr).expect("3x70 fits")
    }

    #[test]
    fn bitfrontier_roundtrips_through_vector() {
        let v = Vector::from_sparse(130, false, vec![0, 63, 64, 129], vec![true; 4]);
        let bf = BitFrontier::from_vector(&v);
        assert_eq!((bf.dim(), bf.nnz()), (130, 4));
        assert!(bf.contains(63) && bf.contains(129) && !bf.contains(1));
        let mut state = ConvertState::new();
        // 4/130 = 3% > 1% and rising from no history: densifies, same as a
        // scalar frontier under the same ConvertState.
        let back = bf.into_vector(&mut state, 0.01);
        assert!(!back.is_sparse(), "debounce densified the 3% frontier");
        let ids: Vec<u32> = back.iter_explicit().map(|(i, _)| i).collect();
        assert_eq!(ids, vec![0, 63, 64, 129]);
    }

    #[test]
    fn bitfrontier_insert_tracks_nnz() {
        let mut bf = BitFrontier::new(70);
        assert!(bf.insert(69));
        assert!(!bf.insert(69), "duplicate insert is a no-op");
        assert_eq!(bf.nnz(), 1);
        assert_eq!(bf.words().len(), 2);
    }

    #[test]
    fn packed_words_match_is_explicit() {
        let mut d = DenseVector::new(70, false);
        d.set(0, true);
        d.set(63, true);
        d.set(64, true);
        let c = AccessCounters::new();
        let words = pack_explicit_words(&d, Some(&c));
        assert_eq!(words, vec![(1u64 << 63) | 1, 1]);
        assert_eq!(c.snapshot().bit_word_ops, 2, "one charge per word");
    }

    #[test]
    fn bit_reduce_row_matches_scalar_examined_counts() {
        // Row 0 of the 3x70 store has entries at columns {0, 63, 64}.
        let store = bitmap_3x70();
        let mut d = DenseVector::new(70, false);
        d.set(64, true); // only the third stored entry is explicit
        let ctx = bit_pull_ctx(
            BoolStructure,
            &store,
            &d,
            &Descriptor::new().structure_only(true),
            None,
        )
        .expect("BoolStructure on a bitmap qualifies");
        assert!(ctx.break_on_hit, "OR saturates at true");

        // Early exit: scalar examines entries 1 (col 0), 2 (col 63),
        // 3 (col 64, hit) => examined = 3.
        let c = AccessCounters::new();
        let y = bit_reduce_row(&store, &ctx, 0, false, true, Some(&c));
        assert!(y);
        let s = c.snapshot();
        assert_eq!(s.matrix, 3, "popcount rank = scalar examined");
        assert_eq!(s.vector, 4);
        assert_eq!(s.bit_word_ops, 2, "hit found in the second word");

        // No early exit: the scalar loop walks the full degree.
        let c = AccessCounters::new();
        let y = bit_reduce_row(&store, &ctx, 0, false, false, Some(&c));
        assert!(y);
        assert_eq!(c.snapshot().matrix, 3, "degree(0) = 3");

        // Row with no explicit neighbor reduces to identity, full degree.
        let c = AccessCounters::new();
        let y = bit_reduce_row(&store, &ctx, 2, false, true, Some(&c));
        assert!(!y);
        assert_eq!(c.snapshot().matrix, 1, "degree(2) = 1");
    }

    #[test]
    fn bit_first_hit_recovers_csr_value_by_rank() {
        // Weighted 1x70 row: values 10, 20, 30 at columns 0, 63, 64.
        let mut coo = Coo::new(1, 70);
        coo.push(0, 0, 10i64);
        coo.push(0, 63, 20);
        coo.push(0, 64, 30);
        let store = BitmapStore::try_from_shared(Arc::new(Csr::from_coo(&coo))).unwrap();
        let mut d = DenseVector::new(70, 0i64);
        d.set(63, 7); // first explicit neighbor is the rank-2 entry
        let fw = pack_frontier(&d, None);
        let c = AccessCounters::new();
        // PlusSecond: product = input value (7); first hit only.
        let y =
            bit_reduce_row_first_hit(crate::ops::PlusSecond, &store, &fw, &d, 0, 0i64, Some(&c));
        assert_eq!(y, 7, "product of the first explicit hit");
        assert_eq!(c.snapshot().matrix, 2, "rank of the hit entry");
    }

    #[test]
    fn compressed_and_dense_frontiers_agree() {
        // 1×512 row with entries spread over 8 words; a single-bit
        // frontier compresses (1 nonzero word × 4 ≤ 8 words).
        let mut coo = Coo::new(1, 512);
        for w in 0..8u32 {
            coo.push(0, w * 64 + 3, true);
        }
        let store = BitmapStore::try_from_shared(Arc::new(Csr::from_coo(&coo))).unwrap();
        let mut d = DenseVector::new(512, false);
        d.set(5 * 64 + 3, true);
        let fw = pack_frontier(&d, None);
        assert!(
            matches!(fw, FrontierWords::Compressed(ref p) if p.len() == 1),
            "sparse frontier compresses"
        );
        let dense = FrontierWords::Dense(pack_explicit_words(&d, None));
        for fw in [&fw, &dense] {
            assert!(fw.contains(5 * 64 + 3) && !fw.contains(3));
            let ctx = BitPull {
                words: fw.clone(),
                hint: true,
                break_on_hit: true,
            };
            let c = AccessCounters::new();
            let y = bit_reduce_row(&store, &ctx, 0, false, true, Some(&c));
            assert!(y);
            // Scalar loop examines entries 1..=6 (hit at word 5's entry).
            let s = c.snapshot();
            assert_eq!(s.matrix, 6, "CSR rank of the hit, either shape");
            assert_eq!(s.vector, 7);
        }
        // Dense scan visits words 0..=5 (6 words, in groups of 4); the
        // compressed scan touches only the frontier's single pair.
        assert_eq!(dense.scan_window(0, &[u64::MAX; 8]).0, 6);
        assert_eq!(fw.scan_window(0, &[u64::MAX; 8]).0, 1);
        assert_eq!(
            dense.scan_window(0, &[u64::MAX; 8]).1,
            fw.scan_window(0, &[u64::MAX; 8]).1
        );
    }

    #[test]
    fn probe_fallback_covers_missing_word_surface() {
        // Middle tile of a 192-row store is empty: its rows have no word
        // surface, and the kernels must not panic on them.
        let n = 3 * graphblas_matrix::TILE_ROWS;
        let mut coo = Coo::new(n, n);
        coo.push(0, 1, true);
        coo.push((n - 1) as u32, 0, true);
        let store = BitmapStore::try_from_shared(Arc::new(Csr::from_coo(&coo))).unwrap();
        let empty_row = graphblas_matrix::TILE_ROWS + 7;
        assert!(RowAccess::<bool>::row_word_span(&store, empty_row).is_none());
        let mut d = DenseVector::new(n, false);
        d.set(1, true);
        let ctx = bit_pull_ctx(
            BoolStructure,
            &store,
            &d,
            &Descriptor::new().structure_only(true),
            None,
        )
        .expect("qualifies");
        let c = AccessCounters::new();
        assert!(!bit_reduce_row(
            &store,
            &ctx,
            empty_row,
            false,
            true,
            Some(&c)
        ));
        let s = c.snapshot();
        assert_eq!((s.matrix, s.vector), (0, 1), "degree-0 scalar charges");
        let c = AccessCounters::new();
        let y = bit_reduce_row_first_hit(
            BoolStructure,
            &store,
            &ctx.words,
            &d,
            empty_row,
            false,
            Some(&c),
        );
        assert!(!y);
        assert_eq!(c.snapshot().matrix, 0);
        // Rows with a surface still reduce normally in the same store.
        assert!(bit_reduce_row(&store, &ctx, 0, false, true, None));
    }

    #[test]
    fn sparse_rows_take_the_probe_path() {
        // Degree-1 row under a 2-word window with a dense frontier: the
        // probe (1 edge) undercuts the word scan (2 words), so no
        // bit_word_ops are charged yet the value and rank still match.
        let store = bitmap_3x70();
        let mut d = DenseVector::new(70, false);
        for j in 0..70 {
            d.set(j, true);
        }
        let ctx = bit_pull_ctx(
            BoolStructure,
            &store,
            &d,
            &Descriptor::new().structure_only(true),
            None,
        )
        .expect("qualifies");
        let c = AccessCounters::new();
        // Row 2 has the single entry at column 1.
        assert!(bit_reduce_row(&store, &ctx, 2, false, true, Some(&c)));
        let s = c.snapshot();
        assert_eq!((s.matrix, s.vector), (1, 2), "scalar charges for rank 1");
        assert_eq!(s.bit_word_ops, 0, "probe path scans no words");
    }

    #[test]
    fn unvisited_index_tracks_complement_and_tail() {
        // 70-bit mask, complemented: visited = {0..=63, 69} so the allowed
        // rows are 64..=68 — group 0 is dead, group 1 live.
        let mut visited = BitVec::new(70);
        for i in 0..64 {
            visited.set(i);
        }
        visited.set(69);
        let m = Mask::complement(&visited);
        let c = AccessCounters::new();
        let idx = UnvisitedIndex::build(&m, Some(&c));
        assert_eq!(idx.live_groups(), vec![1]);
        assert_eq!(idx.allowed_word(0), 0);
        assert_eq!(idx.allowed_word(1), 0b01_1111, "bits 64..=68, tail masked");
        assert_eq!(c.snapshot().bit_word_ops, 3, "2 mask words + 1 summary");

        // Plain (non-complement) masks pass their words through.
        let mut few = BitVec::new(70);
        few.set(65);
        let m2 = Mask::new(&few);
        let idx2 = UnvisitedIndex::build(&m2, None);
        assert_eq!(idx2.live_groups(), vec![1]);
        assert_eq!(idx2.allowed_word(1), 2);
    }

    #[test]
    fn bit_push_union_matches_scalar_expand_sort_dedup() {
        let store = bitmap_3x70();
        // Frontier {0, 2}: neighbors {0, 63, 64} ∪ {1} = {0, 1, 63, 64}.
        let v = SparseVector::from_sorted(vec![0, 2], vec![true, true]);
        let c = AccessCounters::new();
        let desc = Descriptor::new();
        let (ids, vals): (Vec<u32>, Vec<bool>) =
            bit_push_parts(BoolStructure, &store, &v, &desc, Some(&c)).expect("qualifies");
        assert_eq!(ids, vec![0, 1, 63, 64]);
        assert!(vals.iter().all(|&b| b));
        let s = c.snapshot();
        assert_eq!(s.matrix, 4, "one charge per expanded edge");
        assert!(s.sort > 0, "scalar-equivalent sort traffic charged");
        assert!(s.bit_word_ops > 0);

        // Without the descriptor opt-in the arm declines.
        let off = Descriptor::new().bit_kernels(false);
        assert!(
            bit_push_parts::<_, _, bool, _, _>(BoolStructure, &store, &v, &off, None).is_none()
        );
    }
}
