//! Load-balanced interval gather (the ModernGPU `IntervalGather` substitute).
//!
//! Algorithm 3 lines 6–9: given scatter offsets produced by scanning the
//! frontier's neighbor-list lengths, copy each frontier vertex's column
//! slice of the matrix into one concatenated output array. Work is balanced
//! over *output elements*, not segments, so a supervertex with 400k
//! neighbors does not serialize on one worker: each output chunk binary-
//! searches the scan array for its starting segment and walks forward.

use crate::pool;

/// For each output position `p` in `0..offsets[last]`, invoke
/// `write(seg, within, p)` where `seg` is the segment owning `p` and
/// `within` the position inside that segment.
///
/// `offsets` is an exclusive-scan array of segment lengths with a trailing
/// total (length = number of segments + 1), as produced by
/// [`crate::scan::exclusive_scan_offsets`].
pub fn interval_gather<F>(offsets: &[usize], grain: usize, write: F)
where
    F: Fn(usize, usize, usize) + Sync + Send,
{
    assert!(!offsets.is_empty(), "offsets must contain a trailing total");
    let total = *offsets.last().expect("non-empty");
    let n_segments = offsets.len() - 1;
    if total == 0 || n_segments == 0 {
        return;
    }
    pool::par_for_ranges(total, grain, |range| {
        // Find the segment containing range.start: the last offset <= start.
        let mut seg = match offsets[..=n_segments].binary_search(&range.start) {
            Ok(mut idx) => {
                // Skip empty segments that share this offset value.
                while idx < n_segments && offsets[idx + 1] == range.start {
                    idx += 1;
                }
                idx
            }
            Err(idx) => idx - 1,
        };
        for p in range {
            while offsets[seg + 1] <= p {
                seg += 1;
            }
            write(seg, p - offsets[seg], p);
        }
    });
}

/// Concatenate segments of `src` selected by `(offsets, starts)` into a new
/// vector: segment `i` is `src[starts[i] .. starts[i] + len_i]` where
/// `len_i = offsets[i+1] - offsets[i]`.
///
/// This is the exact shape of the frontier neighbor-list expansion: `starts`
/// are CSR row-pointer values of frontier vertices and `src` is the column-
/// index array.
#[must_use]
pub fn gather_segments<T: Copy + Send + Sync + Default>(
    src: &[T],
    starts: &[usize],
    offsets: &[usize],
    grain: usize,
) -> Vec<T> {
    assert_eq!(starts.len() + 1, offsets.len());
    let total = *offsets.last().unwrap_or(&0);
    let mut out = vec![T::default(); total];
    {
        let out_ptr = SendPtr(out.as_mut_ptr());
        interval_gather(offsets, grain, |seg, within, pos| {
            // SAFETY: `pos` values are a partition of 0..total across calls.
            unsafe { *out_ptr.get().add(pos) = src[starts[seg] + within] };
        });
    }
    out
}

struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}
impl<T> SendPtr<T> {
    /// Accessor method (rather than field access) so closures capture the
    /// Sync wrapper, not the raw pointer field.
    #[inline]
    fn get(&self) -> *mut T {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::exclusive_scan_offsets;

    #[test]
    fn gather_simple_segments() {
        let src = vec![10, 11, 12, 20, 30, 31];
        // Segments at src offsets 0 (len 3), 3 (len 1), 4 (len 2).
        let lengths = [3usize, 1, 2];
        let offsets = exclusive_scan_offsets(&lengths);
        let starts = [0usize, 3, 4];
        let out = gather_segments(&src, &starts, &offsets, 2);
        assert_eq!(out, vec![10, 11, 12, 20, 30, 31]);
    }

    #[test]
    fn gather_with_empty_segments() {
        let src = vec![1, 2, 3, 4, 5];
        let lengths = [0usize, 2, 0, 0, 3, 0];
        let offsets = exclusive_scan_offsets(&lengths);
        let starts = [0usize, 0, 2, 2, 2, 5];
        let out = gather_segments(&src, &starts, &offsets, 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn gather_all_empty() {
        let src: Vec<u32> = vec![9, 9];
        let offsets = exclusive_scan_offsets(&[0, 0, 0]);
        let out = gather_segments(&src, &[0, 0, 0], &offsets, 16);
        assert!(out.is_empty());
    }

    #[test]
    fn gather_supervertex_balance() {
        // One giant segment among many tiny ones: result must still be exact.
        let giant = 100_000usize;
        let mut src: Vec<u32> = (0..giant as u32).collect();
        src.push(7);
        src.push(8);
        let lengths = [1usize, giant, 1];
        let offsets = exclusive_scan_offsets(&lengths);
        // starts: tiny seg at index `giant`, giant at 0, tiny at giant+1.
        let starts = [giant, 0, giant + 1];
        let out = gather_segments(&src, &starts, &offsets, 1024);
        assert_eq!(out.len(), giant + 2);
        assert_eq!(out[0], 7);
        assert_eq!(out[1], 0);
        assert_eq!(out[giant], giant as u32 - 1);
        assert_eq!(out[giant + 1], 8);
    }

    #[test]
    fn interval_gather_segment_attribution() {
        // Verify (seg, within) pairs directly.
        let offsets = exclusive_scan_offsets(&[2, 0, 3]);
        let mut hits = vec![(usize::MAX, usize::MAX); 5];
        let cell = std::sync::Mutex::new(&mut hits);
        interval_gather(&offsets, 1, |seg, within, pos| {
            cell.lock().unwrap()[pos] = (seg, within);
        });
        assert_eq!(hits, vec![(0, 0), (0, 1), (2, 0), (2, 1), (2, 2)]);
    }
}
