//! Segmented reduction over sorted keys (the CUB segmented-reduce substitute).
//!
//! After the radix sort in Algorithm 3, equal column indices are adjacent;
//! reducing each run under the semiring's ⊕ monoid produces the temporary
//! output vector `w'` (line 15). The reduction must be associative; it need
//! not be commutative because runs are reduced left-to-right.

use crate::pool;

/// Reduce adjacent runs of equal keys.
///
/// Returns `(unique_keys, reduced_values)`. `keys` must be sorted ascending
/// (runs of equal keys adjacent); `op` combines two values.
#[must_use]
pub fn segmented_reduce_by_key<V, F>(keys: &[u32], vals: &[V], op: F) -> (Vec<u32>, Vec<V>)
where
    V: Copy + Send + Sync,
    F: Fn(V, V) -> V + Sync,
{
    assert_eq!(keys.len(), vals.len());
    if keys.is_empty() {
        return (Vec::new(), Vec::new());
    }
    debug_assert!(keys.windows(2).all(|w| w[0] <= w[1]), "keys must be sorted");

    const GRAIN: usize = 1 << 14;
    if keys.len() <= GRAIN {
        return seq_reduce(keys, vals, &op);
    }

    // Parallel: reduce each chunk independently, then merge boundary runs
    // that straddle chunk edges. The piece count is size-derived (never
    // thread-derived) so the reduction tree — and any floating-point
    // grouping — is identical at every thread count.
    let pieces = (keys.len() / GRAIN).clamp(1, pool::MAX_CHUNKS);
    let partials: Vec<(Vec<u32>, Vec<V>)> = pool::par_map_ranges(keys.len(), pieces, |r| {
        seq_reduce(&keys[r.clone()], &vals[r], &op)
    });

    let total: usize = partials.iter().map(|(k, _)| k.len()).sum();
    let mut out_keys = Vec::with_capacity(total);
    let mut out_vals: Vec<V> = Vec::with_capacity(total);
    for (pk, pv) in partials {
        let mut start = 0;
        if let (Some(&last_k), Some(&first_k)) = (out_keys.last(), pk.first()) {
            if last_k == first_k {
                let last = out_vals.len() - 1;
                out_vals[last] = op(out_vals[last], pv[0]);
                start = 1;
            }
        }
        out_keys.extend_from_slice(&pk[start..]);
        out_vals.extend_from_slice(&pv[start..]);
    }
    (out_keys, out_vals)
}

fn seq_reduce<V, F>(keys: &[u32], vals: &[V], op: &F) -> (Vec<u32>, Vec<V>)
where
    V: Copy,
    F: Fn(V, V) -> V,
{
    let mut out_keys: Vec<u32> = Vec::new();
    let mut out_vals: Vec<V> = Vec::new();
    for (i, &k) in keys.iter().enumerate() {
        if out_keys.last() == Some(&k) {
            let last = out_vals.len() - 1;
            out_vals[last] = op(out_vals[last], vals[i]);
        } else {
            out_keys.push(k);
            out_vals.push(vals[i]);
        }
    }
    (out_keys, out_vals)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input() {
        let (k, v) = segmented_reduce_by_key::<u32, _>(&[], &[], |a, b| a + b);
        assert!(k.is_empty() && v.is_empty());
    }

    #[test]
    fn single_run() {
        let (k, v) = segmented_reduce_by_key(&[5, 5, 5], &[1u32, 2, 3], |a, b| a + b);
        assert_eq!(k, vec![5]);
        assert_eq!(v, vec![6]);
    }

    #[test]
    fn distinct_keys_pass_through() {
        let (k, v) = segmented_reduce_by_key(&[1, 2, 3], &[10u32, 20, 30], |a, b| a + b);
        assert_eq!(k, vec![1, 2, 3]);
        assert_eq!(v, vec![10, 20, 30]);
    }

    #[test]
    fn mixed_runs_with_or_monoid() {
        // BFS semiring: values are booleans, ⊕ = OR.
        let keys = [0u32, 0, 2, 2, 2, 7];
        let vals = [true, false, false, false, true, false];
        let (k, v) = segmented_reduce_by_key(&keys, &vals, |a, b| a || b);
        assert_eq!(k, vec![0, 2, 7]);
        assert_eq!(v, vec![true, true, false]);
    }

    #[test]
    fn large_parallel_matches_sequential() {
        // Many duplicate keys spanning chunk boundaries.
        let n = 300_000usize;
        let keys: Vec<u32> = (0..n).map(|i| (i / 37) as u32).collect();
        let vals: Vec<u64> = (0..n as u64).collect();
        let (pk, pv) = segmented_reduce_by_key(&keys, &vals, |a, b| a + b);
        let (sk, sv) = seq_reduce(&keys, &vals, &|a: u64, b: u64| a + b);
        assert_eq!(pk, sk);
        assert_eq!(pv, sv);
    }

    #[test]
    fn non_commutative_op_reduces_left_to_right() {
        // op = "keep first" is associative but not commutative.
        let keys = [3u32, 3, 3, 9, 9];
        let vals = [100u32, 200, 300, 7, 8];
        let (k, v) = segmented_reduce_by_key(&keys, &vals, |a, _b| a);
        assert_eq!(k, vec![3, 9]);
        assert_eq!(v, vec![100, 7]);
    }

    #[test]
    fn min_plus_style_reduction() {
        let keys = [1u32, 1, 4, 4];
        let vals = [5.0f64, 2.0, 9.0, 11.0];
        let (k, v) = segmented_reduce_by_key(&keys, &vals, f64::min);
        assert_eq!(k, vec![1, 4]);
        assert_eq!(v, vec![2.0, 9.0]);
    }
}
