//! Grain-controlled parallel iteration helpers.
//!
//! All data-parallel loops in the workspace go through these helpers rather
//! than calling rayon ad hoc, so the sequential/parallel cutover policy is
//! in one place. Kernels in this workspace are bandwidth-bound; below a few
//! thousand elements the fork/join overhead dominates, so every helper
//! takes (or derives) a grain size and falls back to the sequential path for
//! small inputs.
//!
//! **Chunk counts derive from the problem size only, never from the thread
//! count** (capped at [`MAX_CHUNKS`]). The worker pool distributes a fixed
//! chunk list by index stealing, so more threads drain the same chunks
//! faster — and every reduction grouping (including floating-point
//! parenthesization) is identical at 1, 2, or 64 threads. This is what
//! makes algorithm output bit-identical across `PUSH_PULL_THREADS`
//! settings, which the determinism suite asserts.

use rayon::prelude::*;
use std::ops::Range;

/// Default minimum number of elements each spawned task should own.
pub const DEFAULT_GRAIN: usize = 4096;

/// Upper bound on chunks per parallel region. Plenty for productive
/// stealing at any realistic lane count while keeping per-chunk overhead
/// negligible; independent of the thread count by design (see module doc).
pub const MAX_CHUNKS: usize = 128;

/// Number of worker threads rayon will use.
#[must_use]
pub fn num_threads() -> usize {
    rayon::current_num_threads()
}

/// Split `0..n` into at most `pieces` contiguous ranges of near-equal size.
///
/// Returns fewer than `pieces` ranges when `n < pieces`. Never returns an
/// empty range.
#[must_use]
pub fn split_ranges(n: usize, pieces: usize) -> Vec<Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let pieces = pieces.clamp(1, n);
    let base = n / pieces;
    let extra = n % pieces;
    let mut out = Vec::with_capacity(pieces);
    let mut start = 0;
    for i in 0..pieces {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

/// Run `body` over every index in `0..n`, in parallel when `n` is large
/// enough to amortize the fork/join cost.
pub fn par_for_each_index<F>(n: usize, grain: usize, body: F)
where
    F: Fn(usize) + Sync + Send,
{
    if n <= grain.max(1) {
        for i in 0..n {
            body(i);
        }
    } else {
        (0..n)
            .into_par_iter()
            .with_min_len(grain.max(1))
            .for_each(body);
    }
}

/// The standard size-derived chunk list over `0..n`: one chunk per `grain`
/// items, at most [`MAX_CHUNKS`], never empty ranges. This is the shared
/// chunking rule of [`par_for_ranges`] and the fused-pipeline pull kernel —
/// boundaries depend on `n` and `grain` only, never on the lane count, so
/// per-chunk results recombined in list order are deterministic.
#[must_use]
pub fn index_chunks(n: usize, grain: usize) -> Vec<Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let pieces = (n / grain.max(1)).clamp(1, MAX_CHUNKS);
    split_ranges(n, pieces)
}

/// Run `body` once per contiguous chunk of `0..n`, in parallel.
///
/// Chunking (rather than per-index work items) lets the body keep per-chunk
/// scratch state, which is how the scatter phases of radix sort and the
/// boundary-fix phase of segmented reduce are written.
pub fn par_for_ranges<F>(n: usize, grain: usize, body: F)
where
    F: Fn(Range<usize>) + Sync + Send,
{
    if n == 0 {
        return;
    }
    if n <= grain.max(1) {
        body(0..n);
        return;
    }
    index_chunks(n, grain).into_par_iter().for_each(body);
}

/// Fill `out[i] = body(i)` for every index, in parallel over contiguous
/// chunks when `out` is large enough to amortize the fork/join cost.
///
/// Each chunk writes its own disjoint output slice directly — no per-chunk
/// temporary vectors, no reassembly copy — which is how the row-based
/// (pull) matvec kernel materializes its dense output.
pub fn par_fill_with<T, F>(out: &mut [T], grain: usize, body: F)
where
    T: Send,
    F: Fn(usize) -> T + Sync + Send,
{
    out.par_iter_mut()
        .with_min_len(grain.max(1))
        .enumerate()
        .for_each(|(i, slot)| *slot = body(i));
}

/// Map each contiguous chunk of `0..n` through `body` and collect the
/// results in chunk order.
pub fn par_map_ranges<T, F>(n: usize, pieces: usize, body: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync + Send + Clone,
{
    split_ranges(n, pieces).into_par_iter().map(body).collect()
}

/// Run one task per shard (stripe) and collect results in shard order.
///
/// Shard-affinity scheduling for the sharded kernels: the work list holds
/// exactly one indivisible task per stripe, so whichever worker picks up
/// stripe `s` owns *every* write into that stripe for the whole region —
/// stripe-local SPAs and merges never migrate between lanes mid-flight,
/// and no two lanes ever touch the same stripe. Results recombine in
/// stripe order regardless of which lane ran which stripe, preserving the
/// workspace-wide determinism contract.
pub fn par_map_shards<T, F>(n_shards: usize, body: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync + Send + Clone,
{
    if n_shards <= 1 {
        return (0..n_shards).map(body).collect();
    }
    (0..n_shards).into_par_iter().map(body).collect()
}

/// Flatten a 2-D `(row, index)` grid of independent work — row `r` owning
/// `lens[r]` items — into one chunk list for the worker pool.
///
/// This is the batched-kernel work distribution: instead of parallelizing
/// over rows (which starves lanes when one row's frontier is tiny and
/// another's is huge), every row is cut into size-derived chunks of at
/// least `grain` items (at most [`MAX_CHUNKS`] per row), and all chunks
/// land in a single flat list the pool drains by index stealing. Rows with
/// zero items contribute no chunks. Chunk order is row-major — boundaries
/// derive from `lens` only, never the lane count, so any per-row
/// recombination that consumes chunks in list order is deterministic.
#[must_use]
pub fn grid_chunks(lens: &[usize], grain: usize) -> Vec<(usize, Range<usize>)> {
    let mut out = Vec::new();
    for (r, &len) in lens.iter().enumerate() {
        if len == 0 {
            continue;
        }
        let pieces = (len / grain.max(1)).clamp(1, MAX_CHUNKS);
        for range in split_ranges(len, pieces) {
            out.push((r, range));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn split_ranges_covers_everything_exactly_once() {
        for n in [0usize, 1, 2, 7, 100, 1023] {
            for pieces in [1usize, 2, 3, 8, 200] {
                let ranges = split_ranges(n, pieces);
                let mut seen = vec![false; n];
                for r in &ranges {
                    assert!(!r.is_empty(), "empty range for n={n} pieces={pieces}");
                    for i in r.clone() {
                        assert!(!seen[i]);
                        seen[i] = true;
                    }
                }
                assert!(seen.iter().all(|&s| s), "n={n} pieces={pieces}");
            }
        }
    }

    #[test]
    fn split_ranges_of_zero_is_empty() {
        assert!(split_ranges(0, 4).is_empty());
    }

    #[test]
    fn par_for_each_index_touches_each_index_once() {
        let n = 10_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        par_for_each_index(n, 64, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_for_ranges_partitions_domain() {
        let n = 50_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        par_for_ranges(n, 1000, |r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_fill_with_writes_every_slot() {
        let mut out = vec![0usize; 50_000];
        rayon::with_num_threads(4, || {
            par_fill_with(&mut out, 256, |i| i * 3);
        });
        assert!(out.iter().enumerate().all(|(i, &x)| x == i * 3));
        // Small input (sequential path) behaves identically.
        let mut small = vec![0usize; 7];
        par_fill_with(&mut small, 256, |i| i + 1);
        assert_eq!(small, vec![1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn grid_chunks_partitions_every_row() {
        let lens = [0usize, 5, 10_000, 1, 0, 4096];
        let chunks = grid_chunks(&lens, 256);
        // Every (row, index) pair covered exactly once, rows in order.
        let mut seen: Vec<Vec<bool>> = lens.iter().map(|&l| vec![false; l]).collect();
        let mut last_row = 0usize;
        for (r, range) in &chunks {
            assert!(*r >= last_row, "chunks are row-major");
            last_row = *r;
            assert!(!range.is_empty());
            for i in range.clone() {
                assert!(!seen[*r][i], "index covered twice");
                seen[*r][i] = true;
            }
        }
        assert!(seen.iter().flatten().all(|&s| s));
        // Zero-length rows contribute nothing.
        assert!(chunks.iter().all(|(r, _)| lens[*r] > 0));
        // The large row split into multiple chunks; small rows into one.
        assert!(chunks.iter().filter(|(r, _)| *r == 2).count() > 1);
        assert_eq!(chunks.iter().filter(|(r, _)| *r == 1).count(), 1);
    }

    #[test]
    fn grid_chunks_respects_max_chunks_per_row() {
        let chunks = grid_chunks(&[1_000_000], 1);
        assert_eq!(chunks.len(), MAX_CHUNKS);
    }

    #[test]
    fn par_map_shards_returns_in_shard_order() {
        rayon::with_num_threads(4, || {
            let out = par_map_shards(9, |s| s * s);
            assert_eq!(out, (0..9).map(|s| s * s).collect::<Vec<_>>());
        });
        assert!(par_map_shards(0, |s| s).is_empty());
        assert_eq!(par_map_shards(1, |s| s + 7), vec![7]);
    }

    #[test]
    fn par_map_ranges_preserves_chunk_order() {
        let sums = par_map_ranges(100, 7, |r| r.sum::<usize>());
        let total: usize = sums.iter().sum();
        assert_eq!(total, 99 * 100 / 2);
        // Chunk order: starts must be increasing.
        let starts = par_map_ranges(100, 7, |r| r.start);
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted);
    }
}
