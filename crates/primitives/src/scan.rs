//! Exclusive and inclusive prefix sums (the ModernGPU `Scan` substitute).
//!
//! Column-based matvec (paper Algorithm 3, line 5) scans the per-frontier-
//! vertex neighbor-list lengths to obtain scatter offsets for the gather
//! phase. The parallel variant is the classic three-phase chunked scan:
//! per-chunk reduce, scan of chunk totals, per-chunk rescan with offset.

use crate::pool;
use rayon::prelude::*;

/// Grain below which the sequential scan is used.
const SCAN_GRAIN: usize = 1 << 14;

/// In-place exclusive prefix sum. Returns the total (sum of all inputs).
///
/// `[3, 1, 4, 1]` becomes `[0, 3, 4, 8]` and `9` is returned.
pub fn exclusive_scan_in_place(data: &mut [usize]) -> usize {
    if data.len() >= SCAN_GRAIN && pool::num_threads() > 1 {
        return exclusive_scan_parallel(data);
    }
    let mut running = 0usize;
    for x in data.iter_mut() {
        let v = *x;
        *x = running;
        running += v;
    }
    running
}

/// Exclusive prefix sum into a fresh vector with one extra trailing slot
/// holding the total, i.e. a CSR-style offsets array of length `n + 1`.
#[must_use]
pub fn exclusive_scan_offsets(lengths: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(lengths.len() + 1);
    out.extend_from_slice(lengths);
    out.push(0);
    exclusive_scan_in_place(&mut out);
    out
}

/// In-place inclusive prefix sum. Returns the total.
pub fn inclusive_scan_in_place(data: &mut [usize]) -> usize {
    let mut running = 0usize;
    for x in data.iter_mut() {
        running += *x;
        *x = running;
    }
    running
}

fn exclusive_scan_parallel(data: &mut [usize]) -> usize {
    let n = data.len();
    // Size-derived piece count (not thread count) so chunk boundaries are
    // identical at every lane count; see `pool` module doc.
    let pieces = (n / (SCAN_GRAIN / 4)).clamp(1, pool::MAX_CHUNKS);
    let ranges = pool::split_ranges(n, pieces);

    // Phase 1: per-chunk totals.
    let mut totals: Vec<usize> = ranges
        .par_iter()
        .map(|r| data[r.clone()].iter().sum::<usize>())
        .collect();

    // Phase 2: scan the chunk totals sequentially (tiny).
    let mut running = 0usize;
    for t in totals.iter_mut() {
        let v = *t;
        *t = running;
        running += v;
    }

    // Phase 3: rescan each chunk with its offset.
    // Safety/borrow note: chunks are disjoint, expressed via par chunk split.
    let offsets = totals;
    let chunk_bounds: Vec<(usize, usize)> = ranges.iter().map(|r| (r.start, r.end)).collect();
    // Split `data` into the same disjoint chunks for parallel mutation.
    let mut slices: Vec<&mut [usize]> = Vec::with_capacity(chunk_bounds.len());
    let mut rest = data;
    let mut consumed = 0usize;
    for &(start, end) in &chunk_bounds {
        debug_assert_eq!(start, consumed);
        let (head, tail) = rest.split_at_mut(end - start);
        slices.push(head);
        rest = tail;
        consumed = end;
    }
    slices
        .into_par_iter()
        .zip(offsets.into_par_iter())
        .for_each(|(chunk, offset)| {
            let mut acc = offset;
            for x in chunk.iter_mut() {
                let v = *x;
                *x = acc;
                acc += v;
            }
        });
    running
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_exclusive(data: &[usize]) -> (Vec<usize>, usize) {
        let mut out = Vec::with_capacity(data.len());
        let mut acc = 0;
        for &x in data {
            out.push(acc);
            acc += x;
        }
        (out, acc)
    }

    #[test]
    fn exclusive_scan_small() {
        let mut v = vec![3, 1, 4, 1];
        let total = exclusive_scan_in_place(&mut v);
        assert_eq!(v, vec![0, 3, 4, 8]);
        assert_eq!(total, 9);
    }

    #[test]
    fn exclusive_scan_empty_and_single() {
        let mut v: Vec<usize> = vec![];
        assert_eq!(exclusive_scan_in_place(&mut v), 0);
        let mut v = vec![42];
        assert_eq!(exclusive_scan_in_place(&mut v), 42);
        assert_eq!(v, vec![0]);
    }

    #[test]
    fn inclusive_scan_small() {
        let mut v = vec![3, 1, 4, 1];
        let total = inclusive_scan_in_place(&mut v);
        assert_eq!(v, vec![3, 4, 8, 9]);
        assert_eq!(total, 9);
    }

    #[test]
    fn exclusive_scan_large_matches_reference() {
        // Large enough to exercise the parallel path.
        let data: Vec<usize> = (0..100_000).map(|i| (i * 7 + 3) % 11).collect();
        let (expect, expect_total) = reference_exclusive(&data);
        let mut v = data;
        let total = exclusive_scan_in_place(&mut v);
        assert_eq!(total, expect_total);
        assert_eq!(v, expect);
    }

    #[test]
    fn offsets_form() {
        let offsets = exclusive_scan_offsets(&[2, 0, 3]);
        assert_eq!(offsets, vec![0, 2, 2, 5]);
    }

    #[test]
    fn offsets_of_empty() {
        assert_eq!(exclusive_scan_offsets(&[]), vec![0]);
    }
}
