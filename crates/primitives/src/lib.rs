//! Parallel primitives substrate for the push-pull GraphBLAS reproduction.
//!
//! The paper implements its column-based masked matvec (Algorithm 3) on the
//! GPU out of four library primitives: prefix-sum (ModernGPU `Scan`),
//! load-balanced gather (ModernGPU `IntervalGather`), radix sort (CUB), and
//! segmented reduction (CUB). This crate provides CPU equivalents of those
//! primitives with the same operator contracts, plus the supporting data
//! structures the paper relies on:
//!
//! * [`scan`] — sequential and parallel exclusive/inclusive prefix sums.
//! * [`gather`] — load-balanced interval gather over CSR-style segments.
//! * [`sort`] — LSD radix sort, key-only and key-value. The key-only /
//!   key-value distinction is exactly the paper's *structure-only*
//!   optimization (§5.5): dropping the value payload halves sort traffic.
//! * [`segreduce`] — segmented reduction under an arbitrary monoid.
//! * [`merge`] — heap-based multiway merge, the textbook `O(n log k)`
//!   alternative analyzed in §3.1 (kept for the ablation bench).
//! * [`spa`] — the sparse accumulator of Gilbert, Moler & Schreiber, with the
//!   §3.2 "list of zeroes" variant that amortizes the `O(M)` mask setup.
//! * [`bitvec`] — plain and atomic bit vectors for visited sets and masks.
//! * [`counters`] — memory-access counters used to *measure* the Table 1
//!   cost model directly instead of inferring it from wall clock.
//! * [`pool`] — grain-controlled parallel-for helpers.
//! * [`limits`] — cooperative deadlines and work/bytes budgets enforced at
//!   the kernels' chunk boundaries through [`counters`].
//! * `fault` (behind the `fault-injection` cargo feature) — deterministic
//!   seeded fault injection for the chaos/robustness suite.

#![warn(missing_docs)]

pub mod bitvec;
pub mod counters;
#[cfg(feature = "fault-injection")]
pub mod fault;
pub mod gather;
pub mod limits;
pub mod merge;
pub mod pool;
pub mod scan;
pub mod segreduce;
pub mod sort;
pub mod spa;

pub use bitvec::{AtomicBitVec, BitVec};
pub use counters::{AccessCounters, CounterSnapshot};
pub use limits::{ConversionKey, ExecLimits, StopReason};
pub use spa::Spa;
