//! Execution limits: deadlines and resource budgets for one guarded run.
//!
//! A production service sharing one graph across many tenants needs every
//! query to be *bounded*: a wall-clock deadline, a cap on charged memory
//! accesses (the same measured-work currency the push/pull cost model
//! already uses), and a cap on bytes the run may spend on storage-format
//! conversions. [`ExecLimits`] is the caller-facing description of those
//! bounds; the enforcement state lives inside
//! [`AccessCounters`](crate::counters::AccessCounters), which every kernel
//! already threads, so installing limits changes no kernel signatures.
//!
//! Enforcement is cooperative and chunk-grained: kernels poll
//! [`AccessCounters::checkpoint`](crate::counters::AccessCounters::checkpoint)
//! at their existing size-derived chunk boundaries (per pull row, per SPA
//! chunk, per expansion preamble). Because those boundaries never depend on
//! the lane count, a run that completes under limits is bit-identical to an
//! unlimited run; a run that trips aborts with a typed error and leaves
//! caller state, format caches, and (after the guard restores them) the
//! counters untouched.

use std::time::Duration;

/// Why a limited run was stopped — the sticky trip reason recorded by the
/// first checkpoint that observed a limit violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The wall-clock deadline expired.
    Deadline,
    /// The charged-access work budget was exhausted.
    WorkBudget,
    /// The bytes budget for conversions/allocations was exhausted (or an
    /// injected allocation failure fired).
    BytesBudget,
}

impl StopReason {
    pub(crate) const fn code(self) -> u8 {
        match self {
            StopReason::Deadline => 1,
            StopReason::WorkBudget => 2,
            StopReason::BytesBudget => 3,
        }
    }

    pub(crate) const fn from_code(code: u8) -> Option<Self> {
        match code {
            1 => Some(StopReason::Deadline),
            2 => Some(StopReason::WorkBudget),
            3 => Some(StopReason::BytesBudget),
            _ => None,
        }
    }
}

/// Resource limits for one guarded execution. The default is unlimited —
/// installing it is free and trips nothing.
///
/// ```
/// use graphblas_primitives::limits::ExecLimits;
/// use std::time::Duration;
///
/// let limits = ExecLimits::none()
///     .with_deadline(Duration::from_millis(50))
///     .with_work_budget(1_000_000);
/// assert!(limits.is_limited());
/// assert!(!ExecLimits::none().is_limited());
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecLimits {
    /// Wall-clock deadline, measured from the moment the limits are
    /// installed. `None` = no deadline.
    pub deadline: Option<Duration>,
    /// Budget on charged accesses (the [`total`] of the four Table 1
    /// access classes) this run may spend. `None` = unlimited.
    ///
    /// [`total`]: crate::counters::AccessCounters::total
    pub work_budget: Option<u64>,
    /// Budget on bytes the run may spend on storage conversions and kernel
    /// buffer allocations. `None` = unlimited.
    pub bytes_budget: Option<u64>,
}

impl ExecLimits {
    /// No limits at all (the default).
    #[must_use]
    pub const fn none() -> Self {
        Self {
            deadline: None,
            work_budget: None,
            bytes_budget: None,
        }
    }

    /// Builder: set the wall-clock deadline.
    #[must_use]
    pub const fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Builder: set the charged-access work budget.
    #[must_use]
    pub const fn with_work_budget(mut self, accesses: u64) -> Self {
        self.work_budget = Some(accesses);
        self
    }

    /// Builder: set the conversion/allocation bytes budget.
    #[must_use]
    pub const fn with_bytes_budget(mut self, bytes: u64) -> Self {
        self.bytes_budget = Some(bytes);
        self
    }

    /// Whether any limit is actually set.
    #[must_use]
    pub const fn is_limited(&self) -> bool {
        self.deadline.is_some() || self.work_budget.is_some() || self.bytes_budget.is_some()
    }
}

/// Identifies one charged storage-conversion site, so a conversion's bytes
/// are charged exactly once per guarded run — independent of whether the
/// shared `FormatCache` already holds the converted store. That invariant
/// is what makes a retry after an abort charge (and degrade) exactly like
/// a fresh process even on a warm cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConversionKey {
    /// Which orientation of the graph is being converted.
    pub transposed: bool,
    /// `false` = bitmap store, `true` = hypersparse DCSR store.
    pub dcsr: bool,
}

impl ConversionKey {
    pub(crate) const fn bit(self) -> u8 {
        1 << ((self.transposed as u8) | ((self.dcsr as u8) << 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stop_reason_codes_round_trip() {
        for r in [
            StopReason::Deadline,
            StopReason::WorkBudget,
            StopReason::BytesBudget,
        ] {
            assert_eq!(StopReason::from_code(r.code()), Some(r));
        }
        assert_eq!(StopReason::from_code(0), None);
    }

    #[test]
    fn conversion_keys_are_distinct_bits() {
        let mut seen = 0u8;
        for transposed in [false, true] {
            for dcsr in [false, true] {
                let b = ConversionKey { transposed, dcsr }.bit();
                assert_eq!(seen & b, 0, "duplicate bit");
                seen |= b;
            }
        }
        assert_eq!(seen.count_ones(), 4);
    }
}
