//! Plain and atomic bit vectors.
//!
//! The visited set of a BFS and the dense part of a mask are bit vectors.
//! The atomic variant supports the concurrent "claim a vertex" operation the
//! push phase needs (`set` returns whether the bit was newly set, which is a
//! single `fetch_or`), mirroring the global bitmask Gunrock uses for culling.

use std::sync::atomic::{AtomicU64, Ordering};

const BITS: usize = 64;

/// A fixed-size, single-threaded bit vector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Create an all-zero bit vector of `len` bits.
    #[must_use]
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(BITS)],
            len,
        }
    }

    /// Number of bits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the vector holds zero bits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read bit `i`.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / BITS] >> (i % BITS)) & 1 == 1
    }

    /// Set bit `i`; returns `true` when the bit was previously clear.
    #[inline]
    pub fn set(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let word = &mut self.words[i / BITS];
        let mask = 1u64 << (i % BITS);
        let was_clear = *word & mask == 0;
        *word |= mask;
        was_clear
    }

    /// Clear bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / BITS] &= !(1u64 << (i % BITS));
    }

    /// Reset every bit to zero, keeping the allocation.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The backing `u64` words, least-significant bit first. Bits at
    /// positions `>= len` (the tail of the last word) are always zero —
    /// every mutator preserves this, so word-wise kernels may AND/OR/popcount
    /// whole words without re-masking the tail.
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable access to the backing words. Callers must keep the invariant
    /// that bits at positions `>= len` stay zero (see [`BitVec::words`]).
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Build a bit vector of `len` bits from raw words, truncating or
    /// zero-extending the word list and masking any tail bits beyond `len`.
    #[must_use]
    pub fn from_words(mut words: Vec<u64>, len: usize) -> Self {
        words.resize(len.div_ceil(BITS), 0);
        if !len.is_multiple_of(BITS) {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << (len % BITS)) - 1;
            }
        }
        Self { words, len }
    }

    /// Iterate over the indices of set bits in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * BITS + tz)
                }
            })
        })
    }
}

/// A fixed-size bit vector supporting concurrent set/test.
#[derive(Debug)]
pub struct AtomicBitVec {
    words: Vec<AtomicU64>,
    len: usize,
}

impl AtomicBitVec {
    /// Create an all-zero atomic bit vector of `len` bits.
    #[must_use]
    pub fn new(len: usize) -> Self {
        Self {
            words: (0..len.div_ceil(BITS)).map(|_| AtomicU64::new(0)).collect(),
            len,
        }
    }

    /// Number of bits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the vector holds zero bits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read bit `i` (relaxed).
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / BITS].load(Ordering::Relaxed) >> (i % BITS)) & 1 == 1
    }

    /// Atomically set bit `i`; returns `true` when this call flipped it,
    /// i.e. the caller won the claim on vertex `i`.
    #[inline]
    pub fn set(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % BITS);
        let prev = self.words[i / BITS].fetch_or(mask, Ordering::Relaxed);
        prev & mask == 0
    }

    /// Reset every bit to zero (not thread-safe against concurrent setters).
    pub fn clear_all(&mut self) {
        for w in &mut self.words {
            *w = AtomicU64::new(0);
        }
    }

    /// Number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }

    /// Snapshot into a plain [`BitVec`].
    #[must_use]
    pub fn to_bitvec(&self) -> BitVec {
        BitVec {
            words: self
                .words
                .iter()
                .map(|w| w.load(Ordering::Relaxed))
                .collect(),
            len: self.len,
        }
    }
}

impl From<&BitVec> for AtomicBitVec {
    fn from(b: &BitVec) -> Self {
        Self {
            words: b.words.iter().map(|&w| AtomicU64::new(w)).collect(),
            len: b.len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear_roundtrip() {
        let mut b = BitVec::new(200);
        assert!(!b.get(0));
        assert!(b.set(63));
        assert!(b.set(64));
        assert!(b.set(199));
        assert!(!b.set(63), "second set reports already-set");
        assert!(b.get(63) && b.get(64) && b.get(199));
        assert_eq!(b.count_ones(), 3);
        b.clear(64);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 2);
        b.clear_all();
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn iter_ones_in_order() {
        let mut b = BitVec::new(300);
        for i in [0usize, 5, 63, 64, 65, 128, 299] {
            b.set(i);
        }
        let ones: Vec<usize> = b.iter_ones().collect();
        assert_eq!(ones, vec![0, 5, 63, 64, 65, 128, 299]);
    }

    #[test]
    fn word_surface_roundtrip_masks_tail() {
        // 70 bits = 2 words; from_words must mask bits 70..128 and
        // truncate/extend the word list to exactly div_ceil(len, 64).
        let b = BitVec::from_words(vec![u64::MAX, u64::MAX, 0xdead], 70);
        assert_eq!(b.len(), 70);
        assert_eq!(b.words().len(), 2);
        assert_eq!(b.count_ones(), 70, "tail bits beyond len are zero");
        assert_eq!(b.words()[1], (1u64 << 6) - 1);
        // Word-exact length: no masking, no extra word.
        let c = BitVec::from_words(vec![1u64 << 63], 64);
        assert_eq!((c.len(), c.count_ones()), (64, 1));
        // Zero-extension when too few words are given.
        let d = BitVec::from_words(vec![], 65);
        assert_eq!(d.words().len(), 2);
        assert_eq!(d.count_ones(), 0);
        // words_mut writes are visible through the bit API.
        let mut e = BitVec::new(128);
        e.words_mut()[1] = 0b101;
        assert_eq!(e.iter_ones().collect::<Vec<_>>(), vec![64, 66]);
    }

    #[test]
    fn empty_bitvec() {
        let b = BitVec::new(0);
        assert!(b.is_empty());
        assert_eq!(b.iter_ones().count(), 0);
    }

    #[test]
    fn atomic_claim_semantics() {
        let b = AtomicBitVec::new(128);
        assert!(b.set(100));
        assert!(!b.set(100));
        assert!(b.get(100));
        assert_eq!(b.count_ones(), 1);
    }

    #[test]
    fn atomic_concurrent_claims_unique() {
        use rayon::prelude::*;
        let n = 1 << 14;
        let b = AtomicBitVec::new(n);
        // Each index claimed by 8 racing attempts; exactly one must win.
        let wins: usize = (0..n * 8)
            .into_par_iter()
            .map(|k| usize::from(b.set(k % n)))
            .sum();
        assert_eq!(wins, n);
        assert_eq!(b.count_ones(), n);
    }

    #[test]
    fn snapshot_matches() {
        let ab = AtomicBitVec::new(70);
        ab.set(1);
        ab.set(69);
        let b = ab.to_bitvec();
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![1, 69]);
        let ab2 = AtomicBitVec::from(&b);
        assert!(ab2.get(1) && ab2.get(69) && !ab2.get(2));
    }
}
