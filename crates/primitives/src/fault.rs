//! Deterministic fault injection (compiled only with the `fault-injection`
//! cargo feature).
//!
//! A [`FaultPlan`] arms a fixed, seeded set of process-global trigger
//! points so robustness tests and the `paper -- chaos` study can exercise
//! every failure class on demand:
//!
//! * **allocation failure** — the Nth charged allocation/conversion (see
//!   [`AccessCounters::try_charge_alloc`]) reports failure, surfacing as a
//!   typed `BudgetExceeded` where no fallback exists and as a charged
//!   degrade where one does;
//! * **worker-chunk panic** — the Kth pool chunk executed after arming
//!   panics inside the pool's per-chunk catch (installed into the vendored
//!   `rayon` via [`rayon::set_chunk_fault_countdown`]), surfacing as
//!   `WorkerPanicked { chunk }`;
//! * **cost-model inflation** — the measured push/pull cost comparison is
//!   multiplied by a factor, exercising graceful survival of a wildly
//!   wrong planner (direction choices never change results).
//!
//! All trigger state is plain atomics: arming the same plan before two
//! runs injects the same faults at the same logical points, which is what
//! lets the chaos study assert that a post-fault retry is bit-identical to
//! a clean run.
//!
//! [`AccessCounters::try_charge_alloc`]: crate::counters::AccessCounters::try_charge_alloc

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A seeded, deterministic set of faults to inject into the next run(s).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed recorded with the plan (reported by the chaos study so a
    /// failing scenario can be replayed exactly).
    pub seed: u64,
    /// Fail the Nth charged allocation/conversion (1-based). `None` = off.
    pub fail_alloc_nth: Option<u64>,
    /// Panic in the Kth worker-pool chunk executed (1-based). `None` = off.
    pub panic_chunk_nth: Option<u64>,
    /// Multiply the measured cost model's push-work estimate by this
    /// factor. `None` = off.
    pub cost_inflation: Option<f64>,
}

/// Remaining charged allocations until the armed failure fires; negative
/// means disarmed.
static ALLOC_COUNTDOWN: AtomicI64 = AtomicI64::new(-1);
/// Bit pattern of the cost-inflation factor; 0 means disarmed.
static COST_INFLATION_BITS: AtomicU64 = AtomicU64::new(0);

/// Arm a fault plan process-wide. Replaces any previously armed plan.
pub fn install(plan: &FaultPlan) {
    ALLOC_COUNTDOWN.store(
        plan.fail_alloc_nth.map_or(-1, |n| n.max(1) as i64 - 1),
        Ordering::SeqCst,
    );
    COST_INFLATION_BITS.store(
        plan.cost_inflation.map_or(0, f64::to_bits),
        Ordering::SeqCst,
    );
    rayon::set_chunk_fault_countdown(plan.panic_chunk_nth);
}

/// Disarm all injected faults.
pub fn clear() {
    ALLOC_COUNTDOWN.store(-1, Ordering::SeqCst);
    COST_INFLATION_BITS.store(0, Ordering::SeqCst);
    rayon::set_chunk_fault_countdown(None);
}

/// Called by every charged allocation/conversion: returns `true` exactly
/// when the armed Nth-allocation failure fires (and disarms it).
#[must_use]
pub fn alloc_fault_fires() -> bool {
    if ALLOC_COUNTDOWN.load(Ordering::Relaxed) < 0 {
        return false;
    }
    ALLOC_COUNTDOWN.fetch_sub(1, Ordering::SeqCst) == 0
}

/// The armed cost-model inflation factor (1.0 when disarmed).
#[must_use]
pub fn cost_inflation() -> f64 {
    match COST_INFLATION_BITS.load(Ordering::Relaxed) {
        0 => 1.0,
        bits => f64::from_bits(bits),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_countdown_fires_exactly_once_at_nth() {
        install(&FaultPlan {
            fail_alloc_nth: Some(3),
            ..FaultPlan::default()
        });
        assert!(!alloc_fault_fires(), "1st charge survives");
        assert!(!alloc_fault_fires(), "2nd charge survives");
        assert!(alloc_fault_fires(), "3rd charge fails");
        assert!(!alloc_fault_fires(), "fault is one-shot");
        clear();
        assert!(!alloc_fault_fires(), "disarmed");
    }

    #[test]
    fn cost_inflation_defaults_to_identity() {
        clear();
        assert_eq!(cost_inflation(), 1.0);
        install(&FaultPlan {
            cost_inflation: Some(8.0),
            ..FaultPlan::default()
        });
        assert_eq!(cost_inflation(), 8.0);
        clear();
        assert_eq!(cost_inflation(), 1.0);
    }
}
