//! Sparse accumulator (SPA) of Gilbert, Moler & Schreiber.
//!
//! The SPA is a dense value array + dense occupancy flags + a sparse list of
//! occupied indices, giving O(1) random insert/accumulate and O(nnz) harvest
//! into a sorted sparse vector. The paper uses a SPA-like structure in two
//! places: Gustavson SpGEMM rows (our `mxm`), and the §3.2 trick where the
//! mask keeps a *sparse list of its zero positions* so the masked row-based
//! matvec touches `O(nnz(m))` rows instead of `M` after a one-time setup
//! amortized over BFS iterations.

/// Dense-backed sparse accumulator over value type `V`.
///
/// A SPA may be *windowed* ([`Spa::windowed`]): it then accepts only
/// indices inside a half-open window `offset..offset + len` while storing a
/// slab of just the window's width — the stripe-local accumulator of the
/// sharded column kernel, whose cache-blocked slabs are the whole point of
/// the 2D shard partition. Indices in and out of the SPA stay absolute.
#[derive(Debug)]
pub struct Spa<V> {
    values: Vec<V>,
    occupied: Vec<bool>,
    nonzeros: Vec<u32>,
    fill: V,
    offset: u32,
}

impl<V: Copy> Spa<V> {
    /// Create a SPA of logical dimension `n`; `fill` is returned for absent
    /// entries and used to reset slots on `clear`.
    #[must_use]
    pub fn new(n: usize, fill: V) -> Self {
        Self::windowed(0..n, fill)
    }

    /// Create a SPA accepting only indices in `window`, backed by a slab of
    /// the window's width. Absolute indices go in and come out; only the
    /// storage is window-relative.
    #[must_use]
    pub fn windowed(window: std::ops::Range<usize>, fill: V) -> Self {
        Self {
            values: vec![fill; window.len()],
            occupied: vec![false; window.len()],
            nonzeros: Vec::new(),
            fill,
            offset: window.start as u32,
        }
    }

    /// Logical dimension (the window width for a windowed SPA).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.values.len()
    }

    /// First absolute index this SPA accepts (0 for an unwindowed SPA).
    #[must_use]
    pub fn window_start(&self) -> u32 {
        self.offset
    }

    /// Number of occupied slots.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.nonzeros.len()
    }

    /// Accumulate `v` into slot `i` with `op`, or insert it when the slot is
    /// empty.
    #[inline]
    pub fn accumulate<F: FnOnce(V, V) -> V>(&mut self, i: u32, v: V, op: F) {
        let idx = (i - self.offset) as usize;
        if self.occupied[idx] {
            self.values[idx] = op(self.values[idx], v);
        } else {
            self.occupied[idx] = true;
            self.values[idx] = v;
            self.nonzeros.push(i);
        }
    }

    /// Insert `v` at `i`, overwriting any existing value.
    #[inline]
    pub fn insert(&mut self, i: u32, v: V) {
        let idx = (i - self.offset) as usize;
        if !self.occupied[idx] {
            self.occupied[idx] = true;
            self.nonzeros.push(i);
        }
        self.values[idx] = v;
    }

    /// Value at slot `i`, or `None` when unoccupied.
    #[inline]
    #[must_use]
    pub fn get(&self, i: u32) -> Option<V> {
        let idx = (i - self.offset) as usize;
        self.occupied[idx].then(|| self.values[idx])
    }

    /// `true` when slot `i` holds a value.
    #[inline]
    #[must_use]
    pub fn contains(&self, i: u32) -> bool {
        self.occupied[(i - self.offset) as usize]
    }

    /// Drain into `(sorted indices, values)` and reset for reuse.
    ///
    /// Harvest cost is `O(nnz log nnz)` for the sort plus `O(nnz)` to reset —
    /// independent of the dense dimension, which is the point of the SPA.
    pub fn drain_sorted(&mut self) -> (Vec<u32>, Vec<V>) {
        self.nonzeros.sort_unstable();
        let ids = std::mem::take(&mut self.nonzeros);
        let vals = ids
            .iter()
            .map(|&i| self.values[(i - self.offset) as usize])
            .collect();
        for &i in &ids {
            self.occupied[(i - self.offset) as usize] = false;
            self.values[(i - self.offset) as usize] = self.fill;
        }
        (ids, vals)
    }

    /// Drain into a sorted `(index, value)` pair list and reset for reuse.
    ///
    /// The pair form is the harvest hook the column-kernel SPA chunks (and
    /// their fused variants) feed straight into the deterministic k-way
    /// merge — one allocation instead of the zip of [`Spa::drain_sorted`]'s
    /// two.
    pub fn drain_sorted_pairs(&mut self) -> Vec<(u32, V)> {
        self.nonzeros.sort_unstable();
        let ids = std::mem::take(&mut self.nonzeros);
        let out = ids
            .iter()
            .map(|&i| (i, self.values[(i - self.offset) as usize]))
            .collect();
        for &i in &ids {
            self.occupied[(i - self.offset) as usize] = false;
            self.values[(i - self.offset) as usize] = self.fill;
        }
        out
    }

    /// Reset without harvesting.
    pub fn clear(&mut self) {
        for &i in &self.nonzeros {
            self.occupied[(i - self.offset) as usize] = false;
            self.values[(i - self.offset) as usize] = self.fill;
        }
        self.nonzeros.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_and_harvest_sorted() {
        let mut spa = Spa::new(10, 0u32);
        spa.accumulate(7, 1, |a, b| a + b);
        spa.accumulate(2, 5, |a, b| a + b);
        spa.accumulate(7, 2, |a, b| a + b);
        assert_eq!(spa.nnz(), 2);
        assert_eq!(spa.get(7), Some(3));
        assert_eq!(spa.get(0), None);
        let (ids, vals) = spa.drain_sorted();
        assert_eq!(ids, vec![2, 7]);
        assert_eq!(vals, vec![5, 3]);
        // Reusable after drain.
        assert_eq!(spa.nnz(), 0);
        assert_eq!(spa.get(7), None);
        spa.accumulate(7, 9, |a, b| a + b);
        assert_eq!(spa.get(7), Some(9), "fill value restored between uses");
    }

    #[test]
    fn insert_overwrites() {
        let mut spa = Spa::new(4, -1i64);
        spa.insert(3, 10);
        spa.insert(3, 20);
        assert_eq!(spa.get(3), Some(20));
        assert_eq!(spa.nnz(), 1);
    }

    #[test]
    fn clear_resets_everything() {
        let mut spa = Spa::new(8, 0u8);
        spa.insert(1, 1);
        spa.insert(5, 5);
        spa.clear();
        assert_eq!(spa.nnz(), 0);
        assert!(!spa.contains(1) && !spa.contains(5));
        let (ids, _) = spa.drain_sorted();
        assert!(ids.is_empty());
    }

    #[test]
    fn windowed_spa_keeps_absolute_indices() {
        // Stripe 8..13 of a width-20 output: a 5-slot slab, absolute ids.
        let mut spa = Spa::windowed(8..13, 0u32);
        assert_eq!(spa.dim(), 5);
        assert_eq!(spa.window_start(), 8);
        spa.accumulate(12, 3, |a, b| a + b);
        spa.accumulate(8, 1, |a, b| a + b);
        spa.accumulate(12, 4, |a, b| a + b);
        assert_eq!(spa.get(12), Some(7));
        assert!(spa.contains(8) && !spa.contains(9));
        let pairs = spa.drain_sorted_pairs();
        assert_eq!(pairs, vec![(8, 1), (12, 7)]);
        // Reusable after drain, same window.
        spa.insert(10, 9);
        let (ids, vals) = spa.drain_sorted();
        assert_eq!((ids, vals), (vec![10], vec![9]));
        spa.insert(11, 2);
        spa.clear();
        assert_eq!(spa.nnz(), 0);
        assert!(!spa.contains(11));
    }

    #[test]
    fn boolean_or_accumulation() {
        // BFS child-claiming with OR: duplicates collapse to one true.
        let mut spa = Spa::new(6, false);
        for i in [4u32, 4, 4, 1] {
            spa.accumulate(i, true, |a, b| a || b);
        }
        let (ids, vals) = spa.drain_sorted();
        assert_eq!(ids, vec![1, 4]);
        assert_eq!(vals, vec![true, true]);
    }
}
