//! Heap-based multiway (k-way) merge.
//!
//! §3.1 of the paper analyzes column-based matvec as a multiway merge of the
//! `nnz(f)` selected columns: `O(nnz(m_f⁺) · log nnz(f))` memory accesses.
//! The GPU implementation replaces the merge with concatenate + radix sort
//! (§6.2) because sorting maps better onto wide machines; this module keeps
//! the textbook merge so the ablation bench (`ablation_design`) can compare
//! the two strategies, and so the cost-model bench can measure the
//! `log nnz(f)` factor directly.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Merge `k` sorted `(key, value)` lists into one sorted list, combining
/// values of equal keys with `op` (equivalent to merge followed by
/// segmented reduce, fused).
///
/// Each input list must be sorted by key ascending with *unique* keys within
/// the list (CSR column slices satisfy this). Ties across lists are combined
/// in list order, so non-commutative `op` behaves deterministically.
#[must_use]
pub fn multiway_merge_reduce<V, F>(lists: &[&[(u32, V)]], op: F) -> Vec<(u32, V)>
where
    V: Copy,
    F: Fn(V, V) -> V,
{
    match lists.len() {
        0 => Vec::new(),
        1 => lists[0].to_vec(),
        2 => merge2(lists[0], lists[1], &op),
        _ => merge_heap(lists, &op),
    }
}

fn merge2<V: Copy, F: Fn(V, V) -> V>(a: &[(u32, V)], b: &[(u32, V)], op: &F) -> Vec<(u32, V)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push((a[i].0, op(a[i].1, b[j].1)));
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

fn merge_heap<V: Copy, F: Fn(V, V) -> V>(lists: &[&[(u32, V)]], op: &F) -> Vec<(u32, V)> {
    let total: usize = lists.iter().map(|l| l.len()).sum();
    let mut out: Vec<(u32, V)> = Vec::with_capacity(total);
    // Heap entries: (key, list index, position) — list index breaks ties so
    // equal keys pop in list order (determinism for non-commutative ops).
    let mut heap: BinaryHeap<Reverse<(u32, usize, usize)>> = BinaryHeap::with_capacity(lists.len());
    for (li, l) in lists.iter().enumerate() {
        if let Some(&(k, _)) = l.first() {
            heap.push(Reverse((k, li, 0)));
        }
    }
    while let Some(Reverse((k, li, pos))) = heap.pop() {
        let v = lists[li][pos].1;
        match out.last_mut() {
            Some(last) if last.0 == k => last.1 = op(last.1, v),
            _ => out.push((k, v)),
        }
        if pos + 1 < lists[li].len() {
            heap.push(Reverse((lists[li][pos + 1].0, li, pos + 1)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_none_and_one() {
        let empty: Vec<&[(u32, u32)]> = vec![];
        assert!(multiway_merge_reduce(&empty, |a, b| a + b).is_empty());
        let l: &[(u32, u32)] = &[(1, 10), (5, 50)];
        assert_eq!(
            multiway_merge_reduce(&[l], |a, b| a + b),
            vec![(1, 10), (5, 50)]
        );
    }

    #[test]
    fn merge_two_disjoint() {
        let a: &[(u32, i32)] = &[(1, 1), (3, 3)];
        let b: &[(u32, i32)] = &[(2, 2), (4, 4)];
        assert_eq!(
            multiway_merge_reduce(&[a, b], |x, y| x + y),
            vec![(1, 1), (2, 2), (3, 3), (4, 4)]
        );
    }

    #[test]
    fn merge_two_with_collisions() {
        let a: &[(u32, i32)] = &[(1, 1), (3, 3)];
        let b: &[(u32, i32)] = &[(1, 10), (3, 30), (9, 90)];
        assert_eq!(
            multiway_merge_reduce(&[a, b], |x, y| x + y),
            vec![(1, 11), (3, 33), (9, 90)]
        );
    }

    #[test]
    fn merge_many_or_semiring() {
        // Several frontier columns claiming overlapping children with OR.
        let a: &[(u32, bool)] = &[(0, true), (4, true)];
        let b: &[(u32, bool)] = &[(4, true), (5, true)];
        let c: &[(u32, bool)] = &[(0, true), (5, true), (6, true)];
        let merged = multiway_merge_reduce(&[a, b, c], |x, y| x || y);
        assert_eq!(merged, vec![(0, true), (4, true), (5, true), (6, true)]);
    }

    #[test]
    fn merge_heap_tie_order_is_list_order() {
        // Non-commutative "keep first": list order must win.
        let a: &[(u32, &str)] = &[(7, "a")];
        let b: &[(u32, &str)] = &[(7, "b")];
        let c: &[(u32, &str)] = &[(7, "c")];
        let merged = multiway_merge_reduce(&[a, b, c], |x, _| x);
        assert_eq!(merged, vec![(7, "a")]);
    }

    #[test]
    fn merge_many_matches_sort_reference() {
        // Build 20 pseudo-random sorted unique lists and compare against a
        // concatenate+sort+reduce reference.
        let mut state = 12345u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let lists: Vec<Vec<(u32, u64)>> = (0..20)
            .map(|_| {
                let mut keys: Vec<u32> = (0..200).map(|_| (next() % 500) as u32).collect();
                keys.sort_unstable();
                keys.dedup();
                keys.into_iter()
                    .map(|k| (k, u64::from(k) * 2 + 1))
                    .collect()
            })
            .collect();
        let refs: Vec<&[(u32, u64)]> = lists.iter().map(Vec::as_slice).collect();
        let merged = multiway_merge_reduce(&refs, |a, b| a + b);

        let mut flat: Vec<(u32, u64)> = lists.iter().flatten().copied().collect();
        flat.sort_by_key(|&(k, _)| k);
        let mut expect: Vec<(u32, u64)> = Vec::new();
        for (k, v) in flat {
            match expect.last_mut() {
                Some(last) if last.0 == k => last.1 += v,
                _ => expect.push((k, v)),
            }
        }
        assert_eq!(merged, expect);
    }
}
