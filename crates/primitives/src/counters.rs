//! Memory-access counters for validating the Table 1 cost model.
//!
//! The paper's central theoretical claim (Table 1) is stated in *memory
//! accesses into the matrix*, not milliseconds. Wall clock on a different
//! machine cannot falsify that model, so the matvec kernels in
//! `graphblas_core` report their access counts through this structure and
//! the `table1` experiment checks the measured counts against the
//! `O(dM)` / `O(d·nnz(m))` / `O(d·nnz(f)·log nnz(f))` predictions.
//!
//! Counting is coarse-grained (one bulk add per row/segment processed, never
//! per element in a hot loop) so enabling it does not distort the timed
//! benches that run with counting disabled.
//!
//! The counters are `AtomicU64`-backed (relaxed ordering — these are pure
//! tallies with no synchronization role), so instrumented kernels stay
//! exact when the worker pool runs them on many lanes concurrently: the
//! cost model feeding `DirectionPolicy` reports identical totals at every
//! thread count, which `tests/thread_scaling.rs` pins.

use std::sync::atomic::{AtomicU64, Ordering};

/// Tallies of memory accesses by category, shared across worker threads.
///
/// Besides the four Table 1 access classes, the dispatchers record each
/// resolved kernel direction ([`AccessCounters::add_push_step`] /
/// [`AccessCounters::add_pull_step`]), so a traversal's push/pull switch
/// decisions — per source, in the batched kernels — are visible in the
/// same snapshot as the traffic they caused.
#[derive(Debug, Default)]
pub struct AccessCounters {
    /// Reads of matrix storage (row pointers, column indices, values).
    pub matrix: AtomicU64,
    /// Reads/writes of the input and output vectors.
    pub vector: AtomicU64,
    /// Reads of the mask.
    pub mask: AtomicU64,
    /// Elements moved through sort passes (the multiway-merge cost).
    pub sort: AtomicU64,
    /// Matvec steps resolved to the column-based (push) kernel.
    pub push_steps: AtomicU64,
    /// Matvec steps resolved to the row-based (pull) kernel.
    pub pull_steps: AtomicU64,
    /// Intermediate-vector slot writes a fused mxv·apply·assign pipeline
    /// avoided materializing: the full dense output buffer for a fused
    /// pull step, the filtered entry list for a fused push step. Zero on
    /// unfused runs; excluded from [`AccessCounters::total`] because it
    /// records work *not* done.
    pub fused_saved_writes: AtomicU64,
    /// Storage-format switches the execution planner charged: each time a
    /// `FormatPolicy` moves an operand to a different matrix format
    /// (CSR ↔ bitmap ↔ hypersparse DCSR), one switch is recorded — the
    /// format-side analogue of `push_steps`/`pull_steps`. A decision, not
    /// an access; excluded from [`AccessCounters::total`].
    pub format_switches: AtomicU64,
    /// `u64` word operations executed by the bit-parallel boolean kernels
    /// (frontier-word packs, row-word AND/OR scans, merge folds). Each word
    /// touches up to 64 edges, so comparing this tally against the scalar
    /// kernels' per-edge `matrix` examinations makes the 64×-work claim
    /// measurable. Telemetry, not a Table 1 access class; excluded from
    /// [`AccessCounters::total`] and zeroed by both snapshot projections
    /// (scalar and bit runs charge identical *access* totals by contract,
    /// while their word tallies differ by construction).
    pub bit_word_ops: AtomicU64,
    /// Times the planner wanted bitmap storage but the store degraded to
    /// CSR because the dense bit grid would exceed `MAX_BITS`. Makes the
    /// silent `BitmapStore` fallback observable in planner decisions. A
    /// decision, not an access; excluded from [`AccessCounters::total`] and
    /// zeroed by both snapshot projections.
    pub bitmap_degrades: AtomicU64,
}

impl AccessCounters {
    /// Fresh zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` reads of matrix storage.
    #[inline]
    pub fn add_matrix(&self, n: u64) {
        self.matrix.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` reads/writes of the input and output vectors.
    #[inline]
    pub fn add_vector(&self, n: u64) {
        self.vector.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` reads of the mask.
    #[inline]
    pub fn add_mask(&self, n: u64) {
        self.mask.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` elements moved through sort passes.
    #[inline]
    pub fn add_sort(&self, n: u64) {
        self.sort.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one matvec step resolved to the column-based (push) kernel.
    #[inline]
    pub fn add_push_step(&self) {
        self.push_steps.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one matvec step resolved to the row-based (pull) kernel.
    #[inline]
    pub fn add_pull_step(&self) {
        self.pull_steps.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` intermediate-vector writes a fused pipeline avoided.
    #[inline]
    pub fn add_fused_saved_writes(&self, n: u64) {
        self.fused_saved_writes.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one storage-format switch resolved by the planner.
    #[inline]
    pub fn add_format_switch(&self) {
        self.format_switches.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` `u64` word operations executed by a bit-parallel kernel.
    #[inline]
    pub fn add_bit_word_ops(&self, n: u64) {
        self.bit_word_ops.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one bitmap→CSR degrade the planner was forced into.
    #[inline]
    pub fn add_bitmap_degrade(&self) {
        self.bitmap_degrades.fetch_add(1, Ordering::Relaxed);
    }

    /// Sum of all access categories (direction steps are decisions, not
    /// accesses, and are excluded).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.matrix.load(Ordering::Relaxed)
            + self.vector.load(Ordering::Relaxed)
            + self.mask.load(Ordering::Relaxed)
            + self.sort.load(Ordering::Relaxed)
    }

    /// Snapshot as plain integers.
    #[must_use]
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            matrix: self.matrix.load(Ordering::Relaxed),
            vector: self.vector.load(Ordering::Relaxed),
            mask: self.mask.load(Ordering::Relaxed),
            sort: self.sort.load(Ordering::Relaxed),
            push_steps: self.push_steps.load(Ordering::Relaxed),
            pull_steps: self.pull_steps.load(Ordering::Relaxed),
            fused_saved_writes: self.fused_saved_writes.load(Ordering::Relaxed),
            format_switches: self.format_switches.load(Ordering::Relaxed),
            bit_word_ops: self.bit_word_ops.load(Ordering::Relaxed),
            bitmap_degrades: self.bitmap_degrades.load(Ordering::Relaxed),
        }
    }

    /// Reset all categories to zero.
    pub fn reset(&self) {
        self.matrix.store(0, Ordering::Relaxed);
        self.vector.store(0, Ordering::Relaxed);
        self.mask.store(0, Ordering::Relaxed);
        self.sort.store(0, Ordering::Relaxed);
        self.push_steps.store(0, Ordering::Relaxed);
        self.pull_steps.store(0, Ordering::Relaxed);
        self.fused_saved_writes.store(0, Ordering::Relaxed);
        self.format_switches.store(0, Ordering::Relaxed);
        self.bit_word_ops.store(0, Ordering::Relaxed);
        self.bitmap_degrades.store(0, Ordering::Relaxed);
    }
}

/// Plain-integer snapshot of [`AccessCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSnapshot {
    /// Reads of matrix storage (row pointers, column indices, values).
    pub matrix: u64,
    /// Reads/writes of the input and output vectors.
    pub vector: u64,
    /// Reads of the mask.
    pub mask: u64,
    /// Elements moved through sort passes (the multiway-merge cost).
    pub sort: u64,
    /// Steps the dispatcher resolved to push (column kernel).
    pub push_steps: u64,
    /// Steps the dispatcher resolved to pull (row kernel).
    pub pull_steps: u64,
    /// Intermediate writes avoided by fused pipelines (not an access; see
    /// [`AccessCounters::fused_saved_writes`]).
    pub fused_saved_writes: u64,
    /// Storage-format switches charged by the planner (a decision, not an
    /// access; see [`AccessCounters::format_switches`]).
    pub format_switches: u64,
    /// Word operations in the bit-parallel kernels (telemetry, not an
    /// access; see [`AccessCounters::bit_word_ops`]).
    pub bit_word_ops: u64,
    /// Bitmap→CSR planner degrades (a decision, not an access; see
    /// [`AccessCounters::bitmap_degrades`]).
    pub bitmap_degrades: u64,
}

impl CounterSnapshot {
    /// Sum of all access categories (direction steps excluded, as in
    /// [`AccessCounters::total`]).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.matrix + self.vector + self.mask + self.sort
    }

    /// This snapshot with the pure-telemetry fields (`fused_saved_writes`,
    /// `bit_word_ops`, `bitmap_degrades`) zeroed — the Table 1 access
    /// categories plus direction steps only. Fused and unfused runs of the
    /// same computation must agree on this projection (the equivalence
    /// contract `tests/fused_pipelines.rs` pins), and so must bit-kernel
    /// and scalar-kernel runs; the telemetry tallies themselves differ by
    /// construction (only fused runs save writes, only bit runs count
    /// words).
    #[must_use]
    pub fn accesses_only(&self) -> CounterSnapshot {
        CounterSnapshot {
            fused_saved_writes: 0,
            bit_word_ops: 0,
            bitmap_degrades: 0,
            ..*self
        }
    }

    /// This snapshot with `format_switches` (and the per-format telemetry
    /// `bit_word_ops`/`bitmap_degrades`) zeroed. The format-equivalence
    /// contract (`tests/prop_core.rs`) pins that every algorithm's values
    /// *and accesses* are bit-identical across storage formats; the switch
    /// tally itself differs by construction (an `Auto` policy converts,
    /// the `Fixed(Csr)` oracle never does), and the bit-word tally exists
    /// only on bitmap-format runs, so comparisons project them out exactly
    /// as [`CounterSnapshot::accesses_only`] projects out
    /// `fused_saved_writes`.
    #[must_use]
    pub fn without_format_switches(&self) -> CounterSnapshot {
        CounterSnapshot {
            format_switches: 0,
            bit_word_ops: 0,
            bitmap_degrades: 0,
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate_and_reset() {
        let c = AccessCounters::new();
        c.add_matrix(10);
        c.add_matrix(5);
        c.add_vector(2);
        c.add_mask(3);
        c.add_sort(7);
        c.add_push_step();
        c.add_push_step();
        c.add_pull_step();
        c.add_fused_saved_writes(9);
        c.add_format_switch();
        c.add_format_switch();
        c.add_bit_word_ops(5);
        c.add_bitmap_degrade();
        let s = c.snapshot();
        assert_eq!(
            s,
            CounterSnapshot {
                matrix: 15,
                vector: 2,
                mask: 3,
                sort: 7,
                push_steps: 2,
                pull_steps: 1,
                fused_saved_writes: 9,
                format_switches: 2,
                bit_word_ops: 5,
                bitmap_degrades: 1,
            }
        );
        assert_eq!(
            s.total(),
            27,
            "steps, saved writes, switches, word ops are not accesses"
        );
        assert_eq!(c.total(), 27);
        assert_eq!(s.accesses_only().fused_saved_writes, 0);
        assert_eq!(s.accesses_only().bit_word_ops, 0);
        assert_eq!(s.accesses_only().bitmap_degrades, 0);
        assert_eq!(s.accesses_only().matrix, 15);
        assert_eq!(s.without_format_switches().format_switches, 0);
        assert_eq!(s.without_format_switches().bit_word_ops, 0);
        assert_eq!(s.without_format_switches().bitmap_degrades, 0);
        assert_eq!(s.without_format_switches().matrix, 15);
        assert_eq!(s.without_format_switches().fused_saved_writes, 9);
        c.reset();
        assert_eq!(c.total(), 0);
        assert_eq!(c.snapshot().push_steps, 0);
        assert_eq!(c.snapshot().fused_saved_writes, 0);
        assert_eq!(c.snapshot().format_switches, 0);
        assert_eq!(c.snapshot().bit_word_ops, 0);
        assert_eq!(c.snapshot().bitmap_degrades, 0);
    }

    #[test]
    fn concurrent_adds_do_not_lose_updates() {
        use rayon::prelude::*;
        // Force real lanes regardless of the machine/env so the adds
        // genuinely race; atomics must not drop any.
        rayon::with_num_threads(8, || {
            let c = AccessCounters::new();
            (0..100_000u64)
                .into_par_iter()
                .with_min_len(64)
                .for_each(|_| c.add_matrix(1));
            assert_eq!(c.snapshot().matrix, 100_000);
        });
    }
}
