//! Memory-access counters for validating the Table 1 cost model.
//!
//! The paper's central theoretical claim (Table 1) is stated in *memory
//! accesses into the matrix*, not milliseconds. Wall clock on a different
//! machine cannot falsify that model, so the matvec kernels in
//! `graphblas_core` report their access counts through this structure and
//! the `table1` experiment checks the measured counts against the
//! `O(dM)` / `O(d·nnz(m))` / `O(d·nnz(f)·log nnz(f))` predictions.
//!
//! Counting is coarse-grained (one bulk add per row/segment processed, never
//! per element in a hot loop) so enabling it does not distort the timed
//! benches that run with counting disabled.
//!
//! The counters are `AtomicU64`-backed (relaxed ordering — these are pure
//! tallies with no synchronization role), so instrumented kernels stay
//! exact when the worker pool runs them on many lanes concurrently: the
//! cost model feeding `DirectionPolicy` reports identical totals at every
//! thread count, which `tests/thread_scaling.rs` pins.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::limits::{ConversionKey, ExecLimits, StopReason};

/// Tallies of memory accesses by category, shared across worker threads.
///
/// Besides the four Table 1 access classes, the dispatchers record each
/// resolved kernel direction ([`AccessCounters::add_push_step`] /
/// [`AccessCounters::add_pull_step`]), so a traversal's push/pull switch
/// decisions — per source, in the batched kernels — are visible in the
/// same snapshot as the traffic they caused.
#[derive(Debug, Default)]
pub struct AccessCounters {
    /// Reads of matrix storage (row pointers, column indices, values).
    pub matrix: AtomicU64,
    /// Reads/writes of the input and output vectors.
    pub vector: AtomicU64,
    /// Reads of the mask.
    pub mask: AtomicU64,
    /// Elements moved through sort passes (the multiway-merge cost).
    pub sort: AtomicU64,
    /// Matvec steps resolved to the column-based (push) kernel.
    pub push_steps: AtomicU64,
    /// Matvec steps resolved to the row-based (pull) kernel.
    pub pull_steps: AtomicU64,
    /// Intermediate-vector slot writes a fused mxv·apply·assign pipeline
    /// avoided materializing: the full dense output buffer for a fused
    /// pull step, the filtered entry list for a fused push step. Zero on
    /// unfused runs; excluded from [`AccessCounters::total`] because it
    /// records work *not* done.
    pub fused_saved_writes: AtomicU64,
    /// Storage-format switches the execution planner charged: each time a
    /// `FormatPolicy` moves an operand to a different matrix format
    /// (CSR ↔ bitmap ↔ hypersparse DCSR), one switch is recorded — the
    /// format-side analogue of `push_steps`/`pull_steps`. A decision, not
    /// an access; excluded from [`AccessCounters::total`].
    pub format_switches: AtomicU64,
    /// `u64` word operations executed by the bit-parallel boolean kernels
    /// (frontier-word packs, row-word AND/OR scans, merge folds). Each word
    /// touches up to 64 edges, so comparing this tally against the scalar
    /// kernels' per-edge `matrix` examinations makes the 64×-work claim
    /// measurable. Telemetry, not a Table 1 access class; excluded from
    /// [`AccessCounters::total`] and zeroed by both snapshot projections
    /// (scalar and bit runs charge identical *access* totals by contract,
    /// while their word tallies differ by construction).
    pub bit_word_ops: AtomicU64,
    /// Times the planner wanted bitmap storage but the store degraded to
    /// CSR because the dense bit grid would exceed `MAX_BITS`. Makes the
    /// silent `BitmapStore` fallback observable in planner decisions. A
    /// decision, not an access; excluded from [`AccessCounters::total`] and
    /// zeroed by both snapshot projections.
    pub bitmap_degrades: AtomicU64,
    /// Times a storage conversion was denied by the bytes budget (or an
    /// injected allocation fault) and the run gracefully fell back to the
    /// cached CSR instead of aborting — the budget-side analogue of
    /// `bitmap_degrades`. A decision, not an access; excluded from
    /// [`AccessCounters::total`] and zeroed by both snapshot projections.
    pub limit_degrades: AtomicU64,
    /// Stripe-local merges performed by the sharded push kernel: one per
    /// (column stripe, merge) — never a global cross-stripe merge, which
    /// is exactly what sharding eliminates. Zero on unsharded runs.
    /// Telemetry, not a Table 1 access class; excluded from
    /// [`AccessCounters::total`] and zeroed by both snapshot projections
    /// (sharded and unsharded runs charge identical *access* totals by
    /// contract, while only sharded runs tally stripe merges).
    pub shard_merges: AtomicU64,
    /// Products a sharded push kernel scattered into a column stripe other
    /// than the source vertex's own stripe — the traffic a distributed
    /// backend would put on the wire. Zero on unsharded runs. Telemetry,
    /// not an access; excluded from [`AccessCounters::total`] and zeroed
    /// by both snapshot projections.
    pub cross_shard_writes: AtomicU64,

    // ---- limit-enforcement state (not counters; never snapshotted) ----
    // Installed by `install_limits`, polled by `checkpoint` at the kernels'
    // size-derived chunk boundaries. Kept inside AccessCounters because
    // every kernel already threads `Option<&AccessCounters>`, so limits
    // reach every chunk boundary with zero signature changes.
    /// Sticky first-trip reason (`StopReason::code`); 0 = not tripped.
    tripped: AtomicU8,
    /// Fast-path gate: true only while limits are installed.
    limit_active: AtomicBool,
    /// Charged-access budget for this run; `u64::MAX` = unlimited.
    work_budget: AtomicU64,
    /// `total()` at install time — the budget meters accesses *since* then.
    base_work: AtomicU64,
    /// Conversion/allocation bytes budget; `u64::MAX` = unlimited.
    bytes_budget: AtomicU64,
    /// Bytes charged against `bytes_budget` so far this run.
    bytes_charged: AtomicU64,
    /// `ConversionKey::bit` mask of conversions already charged this run.
    conv_charged: AtomicU8,
    /// `ConversionKey::bit` mask of conversions already *denied* this run —
    /// memoized so a retry on a warm `FormatCache` denies (and degrades)
    /// exactly like a fresh process.
    conv_denied: AtomicU8,
    /// Checkpoint calls since install; throttles the deadline clock read.
    check_ticks: AtomicU64,
    /// Absolute deadline. A mutex, not an atomic, but locked only every
    /// `DEADLINE_CHECK_PERIOD` checkpoints; accessed poison-tolerantly.
    deadline: Mutex<Option<Instant>>,
}

/// Checkpoints between deadline clock reads. Work/trip checks run on every
/// checkpoint (plain atomics); only the `Instant::now` + mutex lock is
/// throttled. Tick 0 checks immediately so a zero deadline trips at the
/// first boundary.
const DEADLINE_CHECK_PERIOD: u64 = 64;

impl AccessCounters {
    /// Fresh zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` reads of matrix storage.
    #[inline]
    pub fn add_matrix(&self, n: u64) {
        self.matrix.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` reads/writes of the input and output vectors.
    #[inline]
    pub fn add_vector(&self, n: u64) {
        self.vector.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` reads of the mask.
    #[inline]
    pub fn add_mask(&self, n: u64) {
        self.mask.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` elements moved through sort passes.
    #[inline]
    pub fn add_sort(&self, n: u64) {
        self.sort.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one matvec step resolved to the column-based (push) kernel.
    #[inline]
    pub fn add_push_step(&self) {
        self.push_steps.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one matvec step resolved to the row-based (pull) kernel.
    #[inline]
    pub fn add_pull_step(&self) {
        self.pull_steps.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` intermediate-vector writes a fused pipeline avoided.
    #[inline]
    pub fn add_fused_saved_writes(&self, n: u64) {
        self.fused_saved_writes.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one storage-format switch resolved by the planner.
    #[inline]
    pub fn add_format_switch(&self) {
        self.format_switches.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` `u64` word operations executed by a bit-parallel kernel.
    #[inline]
    pub fn add_bit_word_ops(&self, n: u64) {
        self.bit_word_ops.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one bitmap→CSR degrade the planner was forced into.
    #[inline]
    pub fn add_bitmap_degrade(&self) {
        self.bitmap_degrades.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one budget-denied conversion that fell back to cached CSR.
    #[inline]
    pub fn add_limit_degrade(&self) {
        self.limit_degrades.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` stripe-local merges performed by the sharded push kernel.
    #[inline]
    pub fn add_shard_merges(&self, n: u64) {
        self.shard_merges.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` products written outside the source vertex's stripe.
    #[inline]
    pub fn add_cross_shard_writes(&self, n: u64) {
        self.cross_shard_writes.fetch_add(n, Ordering::Relaxed);
    }

    /// Sum of all access categories (direction steps are decisions, not
    /// accesses, and are excluded).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.matrix.load(Ordering::Relaxed)
            + self.vector.load(Ordering::Relaxed)
            + self.mask.load(Ordering::Relaxed)
            + self.sort.load(Ordering::Relaxed)
    }

    /// Snapshot as plain integers.
    #[must_use]
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            matrix: self.matrix.load(Ordering::Relaxed),
            vector: self.vector.load(Ordering::Relaxed),
            mask: self.mask.load(Ordering::Relaxed),
            sort: self.sort.load(Ordering::Relaxed),
            push_steps: self.push_steps.load(Ordering::Relaxed),
            pull_steps: self.pull_steps.load(Ordering::Relaxed),
            fused_saved_writes: self.fused_saved_writes.load(Ordering::Relaxed),
            format_switches: self.format_switches.load(Ordering::Relaxed),
            bit_word_ops: self.bit_word_ops.load(Ordering::Relaxed),
            bitmap_degrades: self.bitmap_degrades.load(Ordering::Relaxed),
            limit_degrades: self.limit_degrades.load(Ordering::Relaxed),
            shard_merges: self.shard_merges.load(Ordering::Relaxed),
            cross_shard_writes: self.cross_shard_writes.load(Ordering::Relaxed),
        }
    }

    /// Reset all categories to zero.
    pub fn reset(&self) {
        self.matrix.store(0, Ordering::Relaxed);
        self.vector.store(0, Ordering::Relaxed);
        self.mask.store(0, Ordering::Relaxed);
        self.sort.store(0, Ordering::Relaxed);
        self.push_steps.store(0, Ordering::Relaxed);
        self.pull_steps.store(0, Ordering::Relaxed);
        self.fused_saved_writes.store(0, Ordering::Relaxed);
        self.format_switches.store(0, Ordering::Relaxed);
        self.bit_word_ops.store(0, Ordering::Relaxed);
        self.bitmap_degrades.store(0, Ordering::Relaxed);
        self.limit_degrades.store(0, Ordering::Relaxed);
        self.shard_merges.store(0, Ordering::Relaxed);
        self.cross_shard_writes.store(0, Ordering::Relaxed);
    }

    /// Overwrite every counter category from a snapshot. The abort path of
    /// a guarded run uses this to roll the tallies back to their pre-run
    /// values, so a retry starts from exactly the state a fresh process
    /// would see.
    pub fn restore(&self, s: &CounterSnapshot) {
        self.matrix.store(s.matrix, Ordering::Relaxed);
        self.vector.store(s.vector, Ordering::Relaxed);
        self.mask.store(s.mask, Ordering::Relaxed);
        self.sort.store(s.sort, Ordering::Relaxed);
        self.push_steps.store(s.push_steps, Ordering::Relaxed);
        self.pull_steps.store(s.pull_steps, Ordering::Relaxed);
        self.fused_saved_writes
            .store(s.fused_saved_writes, Ordering::Relaxed);
        self.format_switches
            .store(s.format_switches, Ordering::Relaxed);
        self.bit_word_ops.store(s.bit_word_ops, Ordering::Relaxed);
        self.bitmap_degrades
            .store(s.bitmap_degrades, Ordering::Relaxed);
        self.limit_degrades
            .store(s.limit_degrades, Ordering::Relaxed);
        self.shard_merges.store(s.shard_merges, Ordering::Relaxed);
        self.cross_shard_writes
            .store(s.cross_shard_writes, Ordering::Relaxed);
    }

    /// Add every category of `delta` into these counters (one relaxed
    /// atomic add per field). The attributed batch kernels use this to
    /// fold each row's privately-charged work back into the shared
    /// aggregate at the end of the call, so an attributed batch's shared
    /// totals stay identical to an unattributed run of the same batch.
    pub fn absorb(&self, delta: &CounterSnapshot) {
        self.matrix.fetch_add(delta.matrix, Ordering::Relaxed);
        self.vector.fetch_add(delta.vector, Ordering::Relaxed);
        self.mask.fetch_add(delta.mask, Ordering::Relaxed);
        self.sort.fetch_add(delta.sort, Ordering::Relaxed);
        self.push_steps
            .fetch_add(delta.push_steps, Ordering::Relaxed);
        self.pull_steps
            .fetch_add(delta.pull_steps, Ordering::Relaxed);
        self.fused_saved_writes
            .fetch_add(delta.fused_saved_writes, Ordering::Relaxed);
        self.format_switches
            .fetch_add(delta.format_switches, Ordering::Relaxed);
        self.bit_word_ops
            .fetch_add(delta.bit_word_ops, Ordering::Relaxed);
        self.bitmap_degrades
            .fetch_add(delta.bitmap_degrades, Ordering::Relaxed);
        self.limit_degrades
            .fetch_add(delta.limit_degrades, Ordering::Relaxed);
        self.shard_merges
            .fetch_add(delta.shard_merges, Ordering::Relaxed);
        self.cross_shard_writes
            .fetch_add(delta.cross_shard_writes, Ordering::Relaxed);
    }

    // ---- limit enforcement ----

    /// Arm the given limits on these counters. The deadline clock starts
    /// now; the work budget meters accesses charged from this point on.
    /// Replaces any previously installed limits and clears a stale trip.
    pub fn install_limits(&self, limits: &ExecLimits) {
        self.tripped.store(0, Ordering::SeqCst);
        self.work_budget
            .store(limits.work_budget.unwrap_or(u64::MAX), Ordering::SeqCst);
        self.base_work.store(self.total(), Ordering::SeqCst);
        self.bytes_budget
            .store(limits.bytes_budget.unwrap_or(u64::MAX), Ordering::SeqCst);
        self.bytes_charged.store(0, Ordering::SeqCst);
        self.conv_charged.store(0, Ordering::SeqCst);
        self.conv_denied.store(0, Ordering::SeqCst);
        self.check_ticks.store(0, Ordering::SeqCst);
        *self.deadline_slot() = limits.deadline.map(|d| Instant::now() + d);
        self.limit_active
            .store(limits.is_limited(), Ordering::SeqCst);
    }

    /// Disarm limits and clear any trip, returning the counters to the
    /// zero-overhead unlimited state. The guard on a limited run calls this
    /// on every exit path (including aborts), so a tripped state can never
    /// leak into the next run.
    pub fn uninstall_limits(&self) {
        self.limit_active.store(false, Ordering::SeqCst);
        self.tripped.store(0, Ordering::SeqCst);
        self.work_budget.store(u64::MAX, Ordering::SeqCst);
        self.bytes_budget.store(u64::MAX, Ordering::SeqCst);
        self.bytes_charged.store(0, Ordering::SeqCst);
        self.conv_charged.store(0, Ordering::SeqCst);
        self.conv_denied.store(0, Ordering::SeqCst);
        *self.deadline_slot() = None;
    }

    /// Why this run was stopped, if a limit has tripped.
    #[must_use]
    pub fn stop_reason(&self) -> Option<StopReason> {
        StopReason::from_code(self.tripped.load(Ordering::SeqCst))
    }

    /// Poll the installed limits at a chunk boundary. Returns `true` when
    /// execution may continue, `false` once any limit has tripped (kernels
    /// then bail out with a cheap identity result and the dispatcher maps
    /// the sticky [`StopReason`] to a typed error).
    ///
    /// The unlimited fast path is two relaxed loads — cheap enough for the
    /// per-row pull loop at every lane count. The deadline clock is read
    /// only every `DEADLINE_CHECK_PERIOD` calls (and on the first call,
    /// so zero deadlines trip at the first boundary); the work budget is
    /// compared on every call.
    #[inline]
    #[must_use]
    pub fn checkpoint(&self) -> bool {
        if self.tripped.load(Ordering::Relaxed) != 0 {
            return false;
        }
        if !self.limit_active.load(Ordering::Relaxed) {
            return true;
        }
        self.checkpoint_slow()
    }

    #[cold]
    fn checkpoint_slow(&self) -> bool {
        let tick = self.check_ticks.fetch_add(1, Ordering::Relaxed);
        if tick.is_multiple_of(DEADLINE_CHECK_PERIOD) {
            let expired = self.deadline_slot().is_some_and(|at| Instant::now() >= at);
            if expired {
                self.trip(StopReason::Deadline);
                return false;
            }
        }
        let budget = self.work_budget.load(Ordering::Relaxed);
        if budget != u64::MAX {
            let spent = self
                .total()
                .saturating_sub(self.base_work.load(Ordering::Relaxed));
            if spent >= budget {
                self.trip(StopReason::WorkBudget);
                return false;
            }
        }
        true
    }

    /// Charge `bytes` of kernel buffer allocation against the bytes budget
    /// (and give the fault-injection harness its allocation hook). Returns
    /// `false` — after tripping [`StopReason::BytesBudget`] — when the
    /// charge is denied; the caller must then abort before allocating.
    #[must_use]
    pub fn try_charge_alloc(&self, bytes: u64) -> bool {
        #[cfg(feature = "fault-injection")]
        if crate::fault::alloc_fault_fires() {
            self.trip(StopReason::BytesBudget);
            return false;
        }
        if self.tripped.load(Ordering::Relaxed) != 0 {
            return false;
        }
        if !self.limit_active.load(Ordering::Relaxed) {
            return true;
        }
        let budget = self.bytes_budget.load(Ordering::Relaxed);
        if budget == u64::MAX {
            return true;
        }
        let charged = self.bytes_charged.fetch_add(bytes, Ordering::Relaxed) + bytes;
        if charged > budget {
            self.trip(StopReason::BytesBudget);
            return false;
        }
        true
    }

    /// Charge a storage conversion's bytes against the bytes budget.
    /// Unlike [`AccessCounters::try_charge_alloc`], a denial here does
    /// *not* trip the run: conversions always have the cached CSR as a
    /// fallback, so the caller degrades gracefully (recording it via
    /// [`AccessCounters::add_limit_degrade`]) and continues.
    ///
    /// Each [`ConversionKey`] is charged at most once per run and a denial
    /// is memoized per key, so the charge/deny pattern is a function of the
    /// run alone — independent of whether the shared `FormatCache` already
    /// holds the converted store. That makes a post-abort retry degrade
    /// exactly like a fresh process.
    #[must_use]
    pub fn try_charge_conversion(&self, key: ConversionKey, bytes: u64) -> bool {
        let bit = key.bit();
        if self.conv_denied.load(Ordering::Relaxed) & bit != 0 {
            return false;
        }
        if self.conv_charged.load(Ordering::Relaxed) & bit != 0 {
            return true;
        }
        #[cfg(feature = "fault-injection")]
        if crate::fault::alloc_fault_fires() {
            self.conv_denied.fetch_or(bit, Ordering::Relaxed);
            return false;
        }
        if !self.limit_active.load(Ordering::Relaxed) {
            self.conv_charged.fetch_or(bit, Ordering::Relaxed);
            return true;
        }
        let budget = self.bytes_budget.load(Ordering::Relaxed);
        if budget != u64::MAX {
            let charged = self.bytes_charged.load(Ordering::Relaxed);
            if charged + bytes > budget {
                self.conv_denied.fetch_or(bit, Ordering::Relaxed);
                return false;
            }
            self.bytes_charged.fetch_add(bytes, Ordering::Relaxed);
        }
        self.conv_charged.fetch_or(bit, Ordering::Relaxed);
        true
    }

    /// Record the first trip reason; later trips keep the original.
    fn trip(&self, reason: StopReason) {
        let _ = self
            .tripped
            .compare_exchange(0, reason.code(), Ordering::SeqCst, Ordering::SeqCst);
    }

    /// Poison-tolerant access to the deadline slot: a worker panic while
    /// the (briefly held) lock is taken must not wedge later runs.
    fn deadline_slot(&self) -> std::sync::MutexGuard<'_, Option<Instant>> {
        self.deadline
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Plain-integer snapshot of [`AccessCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSnapshot {
    /// Reads of matrix storage (row pointers, column indices, values).
    pub matrix: u64,
    /// Reads/writes of the input and output vectors.
    pub vector: u64,
    /// Reads of the mask.
    pub mask: u64,
    /// Elements moved through sort passes (the multiway-merge cost).
    pub sort: u64,
    /// Steps the dispatcher resolved to push (column kernel).
    pub push_steps: u64,
    /// Steps the dispatcher resolved to pull (row kernel).
    pub pull_steps: u64,
    /// Intermediate writes avoided by fused pipelines (not an access; see
    /// [`AccessCounters::fused_saved_writes`]).
    pub fused_saved_writes: u64,
    /// Storage-format switches charged by the planner (a decision, not an
    /// access; see [`AccessCounters::format_switches`]).
    pub format_switches: u64,
    /// Word operations in the bit-parallel kernels (telemetry, not an
    /// access; see [`AccessCounters::bit_word_ops`]).
    pub bit_word_ops: u64,
    /// Bitmap→CSR planner degrades (a decision, not an access; see
    /// [`AccessCounters::bitmap_degrades`]).
    pub bitmap_degrades: u64,
    /// Budget-denied conversions served from cached CSR (a decision, not
    /// an access; see [`AccessCounters::limit_degrades`]).
    pub limit_degrades: u64,
    /// Stripe-local merges in the sharded push kernel (telemetry, not an
    /// access; see [`AccessCounters::shard_merges`]).
    pub shard_merges: u64,
    /// Products written outside the source vertex's stripe (telemetry, not
    /// an access; see [`AccessCounters::cross_shard_writes`]).
    pub cross_shard_writes: u64,
}

impl CounterSnapshot {
    /// Sum of all access categories (direction steps excluded, as in
    /// [`AccessCounters::total`]).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.matrix + self.vector + self.mask + self.sort
    }

    /// Field-wise difference `self − earlier` (saturating), for folding a
    /// counter's growth since a baseline into another set of counters via
    /// [`AccessCounters::absorb`].
    #[must_use]
    pub fn delta_since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            matrix: self.matrix.saturating_sub(earlier.matrix),
            vector: self.vector.saturating_sub(earlier.vector),
            mask: self.mask.saturating_sub(earlier.mask),
            sort: self.sort.saturating_sub(earlier.sort),
            push_steps: self.push_steps.saturating_sub(earlier.push_steps),
            pull_steps: self.pull_steps.saturating_sub(earlier.pull_steps),
            fused_saved_writes: self
                .fused_saved_writes
                .saturating_sub(earlier.fused_saved_writes),
            format_switches: self.format_switches.saturating_sub(earlier.format_switches),
            bit_word_ops: self.bit_word_ops.saturating_sub(earlier.bit_word_ops),
            bitmap_degrades: self.bitmap_degrades.saturating_sub(earlier.bitmap_degrades),
            limit_degrades: self.limit_degrades.saturating_sub(earlier.limit_degrades),
            shard_merges: self.shard_merges.saturating_sub(earlier.shard_merges),
            cross_shard_writes: self
                .cross_shard_writes
                .saturating_sub(earlier.cross_shard_writes),
        }
    }

    /// This snapshot with the pure-telemetry fields (`fused_saved_writes`,
    /// `bit_word_ops`, `bitmap_degrades`) zeroed — the Table 1 access
    /// categories plus direction steps only. Fused and unfused runs of the
    /// same computation must agree on this projection (the equivalence
    /// contract `tests/fused_pipelines.rs` pins), and so must bit-kernel
    /// and scalar-kernel runs; the telemetry tallies themselves differ by
    /// construction (only fused runs save writes, only bit runs count
    /// words).
    #[must_use]
    pub fn accesses_only(&self) -> CounterSnapshot {
        CounterSnapshot {
            fused_saved_writes: 0,
            bit_word_ops: 0,
            bitmap_degrades: 0,
            limit_degrades: 0,
            shard_merges: 0,
            cross_shard_writes: 0,
            ..*self
        }
    }

    /// This snapshot with `format_switches` (and the per-format telemetry
    /// `bit_word_ops`/`bitmap_degrades`) zeroed. The format-equivalence
    /// contract (`tests/prop_core.rs`) pins that every algorithm's values
    /// *and accesses* are bit-identical across storage formats; the switch
    /// tally itself differs by construction (an `Auto` policy converts,
    /// the `Fixed(Csr)` oracle never does), and the bit-word tally exists
    /// only on bitmap-format runs, so comparisons project them out exactly
    /// as [`CounterSnapshot::accesses_only`] projects out
    /// `fused_saved_writes`.
    #[must_use]
    pub fn without_format_switches(&self) -> CounterSnapshot {
        CounterSnapshot {
            format_switches: 0,
            bit_word_ops: 0,
            bitmap_degrades: 0,
            limit_degrades: 0,
            shard_merges: 0,
            cross_shard_writes: 0,
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate_and_reset() {
        let c = AccessCounters::new();
        c.add_matrix(10);
        c.add_matrix(5);
        c.add_vector(2);
        c.add_mask(3);
        c.add_sort(7);
        c.add_push_step();
        c.add_push_step();
        c.add_pull_step();
        c.add_fused_saved_writes(9);
        c.add_format_switch();
        c.add_format_switch();
        c.add_bit_word_ops(5);
        c.add_bitmap_degrade();
        c.add_limit_degrade();
        c.add_shard_merges(4);
        c.add_cross_shard_writes(11);
        let s = c.snapshot();
        assert_eq!(
            s,
            CounterSnapshot {
                matrix: 15,
                vector: 2,
                mask: 3,
                sort: 7,
                push_steps: 2,
                pull_steps: 1,
                fused_saved_writes: 9,
                format_switches: 2,
                bit_word_ops: 5,
                bitmap_degrades: 1,
                limit_degrades: 1,
                shard_merges: 4,
                cross_shard_writes: 11,
            }
        );
        assert_eq!(
            s.total(),
            27,
            "steps, saved writes, switches, word ops are not accesses"
        );
        assert_eq!(c.total(), 27);
        assert_eq!(s.accesses_only().fused_saved_writes, 0);
        assert_eq!(s.accesses_only().bit_word_ops, 0);
        assert_eq!(s.accesses_only().bitmap_degrades, 0);
        assert_eq!(s.accesses_only().limit_degrades, 0);
        assert_eq!(s.accesses_only().shard_merges, 0);
        assert_eq!(s.accesses_only().cross_shard_writes, 0);
        assert_eq!(s.accesses_only().matrix, 15);
        assert_eq!(s.without_format_switches().format_switches, 0);
        assert_eq!(s.without_format_switches().bit_word_ops, 0);
        assert_eq!(s.without_format_switches().bitmap_degrades, 0);
        assert_eq!(s.without_format_switches().limit_degrades, 0);
        assert_eq!(s.without_format_switches().shard_merges, 0);
        assert_eq!(s.without_format_switches().cross_shard_writes, 0);
        assert_eq!(s.without_format_switches().matrix, 15);
        assert_eq!(s.without_format_switches().fused_saved_writes, 9);
        c.reset();
        assert_eq!(c.total(), 0);
        assert_eq!(c.snapshot().push_steps, 0);
        assert_eq!(c.snapshot().fused_saved_writes, 0);
        assert_eq!(c.snapshot().format_switches, 0);
        assert_eq!(c.snapshot().bit_word_ops, 0);
        assert_eq!(c.snapshot().bitmap_degrades, 0);
        assert_eq!(c.snapshot().limit_degrades, 0);
        assert_eq!(c.snapshot().shard_merges, 0);
        assert_eq!(c.snapshot().cross_shard_writes, 0);
    }

    #[test]
    fn restore_rolls_counters_back() {
        let c = AccessCounters::new();
        c.add_matrix(10);
        c.add_push_step();
        let before = c.snapshot();
        c.add_matrix(99);
        c.add_vector(3);
        c.add_limit_degrade();
        assert_ne!(c.snapshot(), before);
        c.restore(&before);
        assert_eq!(c.snapshot(), before);
    }

    #[test]
    fn absorb_folds_a_delta_into_another_counter_set() {
        let private = AccessCounters::new();
        let base = private.snapshot();
        private.add_matrix(10);
        private.add_push_step();
        private.add_bit_word_ops(3);
        let shared = AccessCounters::new();
        shared.add_matrix(5);
        shared.absorb(&private.snapshot().delta_since(&base));
        let s = shared.snapshot();
        assert_eq!(s.matrix, 15);
        assert_eq!(s.push_steps, 1);
        assert_eq!(s.bit_word_ops, 3);
        // Saturating: a restored (rolled-back) private counter folds as 0.
        private.restore(&base);
        shared.absorb(&private.snapshot().delta_since(&base));
        assert_eq!(shared.snapshot(), s, "empty delta absorbs as a no-op");
    }

    #[test]
    fn unlimited_checkpoint_always_continues() {
        let c = AccessCounters::new();
        assert!(c.checkpoint());
        c.install_limits(&ExecLimits::none());
        assert!(c.checkpoint());
        assert_eq!(c.stop_reason(), None);
        assert!(c.try_charge_alloc(1 << 40));
    }

    #[test]
    fn zero_deadline_trips_at_first_checkpoint() {
        let c = AccessCounters::new();
        c.install_limits(&ExecLimits::none().with_deadline(std::time::Duration::ZERO));
        assert!(!c.checkpoint());
        assert_eq!(c.stop_reason(), Some(StopReason::Deadline));
        // Sticky: later checkpoints keep refusing.
        assert!(!c.checkpoint());
        c.uninstall_limits();
        assert_eq!(c.stop_reason(), None);
        assert!(c.checkpoint());
    }

    #[test]
    fn work_budget_meters_accesses_since_install() {
        let c = AccessCounters::new();
        c.add_matrix(1_000); // pre-existing traffic must not count
        c.install_limits(&ExecLimits::none().with_work_budget(10));
        assert!(c.checkpoint());
        c.add_matrix(4);
        assert!(c.checkpoint(), "4 < 10");
        c.add_vector(6);
        assert!(!c.checkpoint(), "10 >= 10");
        assert_eq!(c.stop_reason(), Some(StopReason::WorkBudget));
        c.uninstall_limits();
    }

    #[test]
    fn bytes_budget_denies_alloc_and_trips() {
        let c = AccessCounters::new();
        c.install_limits(&ExecLimits::none().with_bytes_budget(100));
        assert!(c.try_charge_alloc(60));
        assert!(c.try_charge_alloc(40), "exactly on budget is allowed");
        assert!(!c.try_charge_alloc(1));
        assert_eq!(c.stop_reason(), Some(StopReason::BytesBudget));
        assert!(!c.checkpoint());
        c.uninstall_limits();
    }

    #[test]
    fn conversion_charge_is_once_per_key_and_denial_is_memoized() {
        let c = AccessCounters::new();
        let k_bit = ConversionKey {
            transposed: false,
            dcsr: false,
        };
        let k_dcsr = ConversionKey {
            transposed: false,
            dcsr: true,
        };
        c.install_limits(&ExecLimits::none().with_bytes_budget(100));
        assert!(c.try_charge_conversion(k_bit, 80));
        // Same key again: already charged, no double spend.
        assert!(c.try_charge_conversion(k_bit, 80));
        // Different key over the remaining budget: denied, but NOT a trip —
        // the caller degrades to CSR instead.
        assert!(!c.try_charge_conversion(k_dcsr, 80));
        assert_eq!(c.stop_reason(), None);
        assert!(c.checkpoint());
        // Denial is memoized: the same key is denied again even though a
        // warm cache would make the conversion free now.
        assert!(!c.try_charge_conversion(k_dcsr, 0));
        c.uninstall_limits();
        // Unlimited: conversions always succeed.
        assert!(c.try_charge_conversion(k_dcsr, 1 << 40));
    }

    #[test]
    fn concurrent_adds_do_not_lose_updates() {
        use rayon::prelude::*;
        // Force real lanes regardless of the machine/env so the adds
        // genuinely race; atomics must not drop any.
        rayon::with_num_threads(8, || {
            let c = AccessCounters::new();
            (0..100_000u64)
                .into_par_iter()
                .with_min_len(64)
                .for_each(|_| c.add_matrix(1));
            assert_eq!(c.snapshot().matrix, 100_000);
        });
    }
}
