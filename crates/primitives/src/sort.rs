//! LSD radix sort, key-only and key-value (the CUB radix-sort substitute).
//!
//! Column-based matvec resolves its multiway merge by concatenating all
//! neighbor lists and radix-sorting them (paper §6.2): complexity
//! `O(nnz(m_f⁺) · log M)` because the sort width is `log M` bits, where `M`
//! is the number of matrix rows. Two entry points matter to the paper:
//!
//! * [`sort_pairs`] — (key, value) sort, used by the generic semiring path;
//! * [`sort_keys`] — key-only sort, used when the *structure-only*
//!   optimization (§5.5) applies: BFS never reads values, and dropping the
//!   payload roughly halves the memory traffic of the sort, which the paper
//!   measures as a 1.62× end-to-end speedup.
//!
//! The implementation is a stable LSD radix sort with 8-bit digits and a
//! chunked parallel counting/scatter phase per digit. The number of passes
//! adapts to the largest key (the "log M-bit sort" of §6.2).

use crate::pool;
use rayon::prelude::*;

const RADIX_BITS: usize = 8;
const BUCKETS: usize = 1 << RADIX_BITS;
/// Below this size `slice::sort_unstable` (pattern-defeating quicksort) wins.
const SMALL_SORT: usize = 1 << 12;

/// Number of 8-bit digit passes needed to cover keys `<= max_key`.
#[must_use]
pub fn passes_for(max_key: u32) -> usize {
    if max_key == 0 {
        1
    } else {
        (32 - max_key.leading_zeros() as usize).div_ceil(RADIX_BITS)
    }
}

/// Sort `keys` ascending. `max_key` bounds the key domain (pass count).
///
/// Stable (irrelevant for bare keys, but the pair variant shares the code
/// shape and must be stable for deterministic semiring reductions).
pub fn sort_keys(keys: &mut [u32], max_key: u32) {
    if keys.len() <= SMALL_SORT {
        keys.sort_unstable();
        return;
    }
    let passes = passes_for(max_key);
    let mut buf = vec![0u32; keys.len()];
    let mut src_is_keys = true;
    for pass in 0..passes {
        let shift = pass * RADIX_BITS;
        if src_is_keys {
            radix_pass_keys(keys, &mut buf, shift);
        } else {
            radix_pass_keys(&buf, keys, shift);
        }
        src_is_keys = !src_is_keys;
    }
    if !src_is_keys {
        keys.copy_from_slice(&buf);
    }
}

/// Sort `(keys, vals)` ascending by key, stably. The two slices must have
/// equal length; `max_key` bounds the key domain.
pub fn sort_pairs<V: Copy + Send + Sync>(keys: &mut [u32], vals: &mut [V], max_key: u32) {
    assert_eq!(keys.len(), vals.len(), "key/value length mismatch");
    if keys.len() <= SMALL_SORT {
        // Index sort + permute keeps stability for the small path.
        let mut perm: Vec<u32> = (0..keys.len() as u32).collect();
        perm.sort_by_key(|&i| keys[i as usize]);
        let old_keys = keys.to_vec();
        let old_vals = vals.to_vec();
        for (slot, &i) in perm.iter().enumerate() {
            keys[slot] = old_keys[i as usize];
            vals[slot] = old_vals[i as usize];
        }
        return;
    }
    let passes = passes_for(max_key);
    let mut kbuf = vec![0u32; keys.len()];
    let mut vbuf = vals.to_vec();
    let mut src_is_orig = true;
    for pass in 0..passes {
        let shift = pass * RADIX_BITS;
        if src_is_orig {
            radix_pass_pairs(keys, vals, &mut kbuf, &mut vbuf, shift);
        } else {
            radix_pass_pairs(&kbuf, &vbuf, keys, vals, shift);
        }
        src_is_orig = !src_is_orig;
    }
    if !src_is_orig {
        keys.copy_from_slice(&kbuf);
        vals.copy_from_slice(&vbuf);
    }
}

/// One stable counting pass over an 8-bit digit, keys only.
fn radix_pass_keys(src: &[u32], dst: &mut [u32], shift: usize) {
    let offsets = digit_offsets(src, shift);
    scatter_chunks(src, dst, shift, &offsets, |_, _| {});
}

/// One stable counting pass over an 8-bit digit, carrying values.
fn radix_pass_pairs<V: Copy + Send + Sync>(
    skeys: &[u32],
    svals: &[V],
    dkeys: &mut [u32],
    dvals: &mut [V],
    shift: usize,
) {
    let offsets = digit_offsets(skeys, shift);
    // The scatter closure writes the paired value at the same position.
    let dvals_ptr = SendPtr(dvals.as_mut_ptr());
    scatter_chunks(skeys, dkeys, shift, &offsets, |src_idx, dst_idx| {
        // SAFETY: each dst_idx is written exactly once per pass (offsets are
        // disjoint across chunks and strictly increasing within a chunk).
        unsafe { *dvals_ptr.get().add(dst_idx) = svals[src_idx] };
    });
}

/// Per-chunk digit histograms scanned into global scatter offsets.
/// Layout: `offsets[bucket * n_chunks + chunk]` = first output slot for that
/// (bucket, chunk) pair; bucket-major order preserves stability.
fn digit_offsets(src: &[u32], shift: usize) -> Vec<usize> {
    let n_chunks = chunk_count(src.len());
    let ranges = pool::split_ranges(src.len(), n_chunks);
    let histograms: Vec<[usize; BUCKETS]> = ranges
        .par_iter()
        .map(|r| {
            let mut h = [0usize; BUCKETS];
            for &k in &src[r.clone()] {
                h[digit(k, shift)] += 1;
            }
            h
        })
        .collect();
    let mut offsets = vec![0usize; BUCKETS * n_chunks];
    let mut running = 0usize;
    for bucket in 0..BUCKETS {
        for (chunk, h) in histograms.iter().enumerate() {
            offsets[bucket * n_chunks + chunk] = running;
            running += h[bucket];
        }
    }
    debug_assert_eq!(running, src.len());
    offsets
}

/// Scatter each chunk's elements to their destination slots in parallel.
fn scatter_chunks<F>(src: &[u32], dst: &mut [u32], shift: usize, offsets: &[usize], extra: F)
where
    F: Fn(usize, usize) + Sync + Send,
{
    let n_chunks = chunk_count(src.len());
    let ranges = pool::split_ranges(src.len(), n_chunks);
    let dst_ptr = SendPtr(dst.as_mut_ptr());
    ranges.par_iter().enumerate().for_each(|(chunk, r)| {
        let mut cursors = [0usize; BUCKETS];
        for b in 0..BUCKETS {
            cursors[b] = offsets[b * n_chunks + chunk];
        }
        for i in r.clone() {
            let k = src[i];
            let b = digit(k, shift);
            let pos = cursors[b];
            cursors[b] += 1;
            // SAFETY: (bucket, chunk) output windows are disjoint by
            // construction of `offsets`, so no two threads write one slot.
            unsafe { *dst_ptr.get().add(pos) = k };
            extra(i, pos);
        }
    });
}

#[inline]
fn digit(k: u32, shift: usize) -> usize {
    ((k >> shift) as usize) & (BUCKETS - 1)
}

fn chunk_count(n: usize) -> usize {
    // Size-derived (not thread-derived) so the counting/scatter layout is
    // identical at every lane count; see `pool` module doc.
    (n / SMALL_SORT).clamp(1, pool::MAX_CHUNKS)
}

/// Raw pointer wrapper asserting cross-thread send safety for disjoint writes.
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}
impl<T> SendPtr<T> {
    /// Accessor method (rather than field access) so closures capture the
    /// Sync wrapper, not the raw pointer field.
    #[inline]
    fn get(&self) -> *mut T {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn passes_for_bounds() {
        assert_eq!(passes_for(0), 1);
        assert_eq!(passes_for(255), 1);
        assert_eq!(passes_for(256), 2);
        assert_eq!(passes_for(65_535), 2);
        assert_eq!(passes_for(65_536), 3);
        assert_eq!(passes_for(u32::MAX), 4);
    }

    #[test]
    fn sort_keys_small_and_empty() {
        let mut v: Vec<u32> = vec![];
        sort_keys(&mut v, 0);
        assert!(v.is_empty());
        let mut v = vec![5, 3, 3, 1, 9];
        sort_keys(&mut v, 9);
        assert_eq!(v, vec![1, 3, 3, 5, 9]);
    }

    #[test]
    fn sort_keys_large_random() {
        let mut state = 0x9e3779b97f4a7c15u64;
        let n = 200_000;
        let max_key = (1 << 21) - 1;
        let mut v: Vec<u32> = (0..n)
            .map(|_| (xorshift(&mut state) as u32) & max_key)
            .collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        sort_keys(&mut v, max_key);
        assert_eq!(v, expect);
    }

    #[test]
    fn sort_keys_odd_pass_count() {
        // max_key forcing 3 passes leaves the result in the buffer after an
        // odd number of ping-pongs; verify the copy-back.
        let mut state = 42u64;
        let n = 100_000;
        let max_key = (1 << 20) - 1; // 20 bits -> 3 passes
        let mut v: Vec<u32> = (0..n)
            .map(|_| (xorshift(&mut state) as u32) & max_key)
            .collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        sort_keys(&mut v, max_key);
        assert_eq!(v, expect);
    }

    #[test]
    fn sort_pairs_matches_stable_reference() {
        let mut state = 7u64;
        let n = 150_000;
        let max_key = (1 << 14) - 1;
        let keys: Vec<u32> = (0..n)
            .map(|_| (xorshift(&mut state) as u32) & max_key)
            .collect();
        let vals: Vec<u64> = (0..n as u64).collect();
        let mut reference: Vec<(u32, u64)> =
            keys.iter().copied().zip(vals.iter().copied()).collect();
        reference.sort_by_key(|&(k, _)| k); // stable

        let (mut k2, mut v2) = (keys, vals);
        sort_pairs(&mut k2, &mut v2, max_key);
        let got: Vec<(u32, u64)> = k2.into_iter().zip(v2).collect();
        assert_eq!(got, reference);
    }

    #[test]
    fn sort_pairs_small_path_is_stable() {
        let mut keys = vec![2u32, 1, 2, 1, 2];
        let mut vals = vec!["a", "b", "c", "d", "e"];
        sort_pairs(&mut keys, &mut vals, 2);
        assert_eq!(keys, vec![1, 1, 2, 2, 2]);
        assert_eq!(vals, vec!["b", "d", "a", "c", "e"]);
    }

    #[test]
    fn sort_pairs_with_duplicate_heavy_keys() {
        // Supervertex-like distribution: a few keys dominate.
        let mut state = 99u64;
        let n = 80_000;
        let keys: Vec<u32> = (0..n)
            .map(|_| {
                if xorshift(&mut state) % 10 < 8 {
                    7
                } else {
                    (xorshift(&mut state) % 1000) as u32
                }
            })
            .collect();
        let vals: Vec<u32> = (0..n as u32).collect();
        let mut reference: Vec<(u32, u32)> =
            keys.iter().copied().zip(vals.iter().copied()).collect();
        reference.sort_by_key(|&(k, _)| k);
        let (mut k2, mut v2) = (keys, vals);
        sort_pairs(&mut k2, &mut v2, 1000);
        let got: Vec<(u32, u32)> = k2.into_iter().zip(v2).collect();
        assert_eq!(got, reference);
    }
}
