//! The Table 3 dataset suite, as synthetic stand-ins.
//!
//! Every dataset of the paper's evaluation appears here with its class and
//! a generator whose parameters reproduce the published vertex/edge ratio,
//! degree skew, and diameter regime. `shrink` divides the vertex count by
//! `2^shrink` while keeping the edge factor, so `shrink = 0` regenerates
//! paper-scale graphs (hundreds of millions of edges — budget accordingly)
//! and the default harness value (6) yields laptop-scale graphs with the
//! same structure.

use crate::grid::{road_mesh, RoadParams};
use crate::powerlaw::{chung_lu, PowerLawParams};
use crate::rgg::{radius_for_degree, rgg};
use crate::rmat::{rmat, RmatParams};
use graphblas_matrix::Graph;

/// Table 3's type column.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphClass {
    /// `rs` — real-world scale-free (social/web crawls).
    RealScaleFree,
    /// `gs` — generated scale-free (Kronecker / R-MAT).
    GenScaleFree,
    /// `gm` — generated mesh (random geometric).
    GenMesh,
    /// `rm` — real-world mesh (road networks).
    RealMesh,
}

impl GraphClass {
    /// The two-letter code used in Table 3.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            GraphClass::RealScaleFree => "rs",
            GraphClass::GenScaleFree => "gs",
            GraphClass::GenMesh => "gm",
            GraphClass::RealMesh => "rm",
        }
    }

    /// Scale-free graphs are where the paper expects DOBFS to win (§7.3).
    #[must_use]
    pub fn is_scale_free(self) -> bool {
        matches!(self, GraphClass::RealScaleFree | GraphClass::GenScaleFree)
    }
}

/// A named, generated dataset.
pub struct Dataset {
    /// Paper dataset name this stands in for.
    pub name: &'static str,
    /// Table 3 class.
    pub class: GraphClass,
    /// The generated graph.
    pub graph: Graph<bool>,
}

/// Names in Table 3 order.
pub const DATASET_NAMES: [&str; 11] = [
    "soc-orkut",
    "soc-lj",
    "h09",
    "i04",
    "kron",
    "rmat-22",
    "rmat-23",
    "rmat-24",
    "rgg",
    "roadnet",
    "road_usa",
];

fn shrunk(n: usize, shrink: u32) -> usize {
    (n >> shrink).max(1024)
}

fn mesh_side(n: usize) -> usize {
    (n as f64).sqrt().round().max(32.0) as usize
}

/// Generate one dataset by paper name. Returns `None` for unknown names.
#[must_use]
pub fn dataset(name: &str, shrink: u32, seed: u64) -> Option<Dataset> {
    // Paper-scale vertex counts; edge factors derived from Table 3's
    // edge/vertex ratios (directed-edge counts halved for sampling).
    let d = match name {
        "soc-orkut" => Dataset {
            name: "soc-orkut",
            class: GraphClass::RealScaleFree,
            graph: chung_lu(
                shrunk(3_000_000, shrink),
                35,
                PowerLawParams {
                    gamma: 2.4,
                    offset: 12.0,
                },
                seed ^ 0x01,
            ),
        },
        "soc-lj" => Dataset {
            name: "soc-lj",
            class: GraphClass::RealScaleFree,
            graph: chung_lu(
                shrunk(4_800_000, shrink),
                9,
                PowerLawParams {
                    gamma: 2.4,
                    offset: 10.0,
                },
                seed ^ 0x02,
            ),
        },
        "h09" => Dataset {
            name: "h09",
            class: GraphClass::RealScaleFree,
            graph: chung_lu(
                shrunk(1_100_000, shrink),
                50,
                PowerLawParams {
                    gamma: 2.6,
                    offset: 20.0,
                },
                seed ^ 0x03,
            ),
        },
        "i04" => Dataset {
            name: "i04",
            class: GraphClass::RealScaleFree,
            // indochina-04: extreme hubs (max degree 256k) → small gamma.
            graph: chung_lu(
                shrunk(7_400_000, shrink),
                20,
                PowerLawParams {
                    gamma: 2.05,
                    offset: 4.0,
                },
                seed ^ 0x04,
            ),
        },
        "kron" => Dataset {
            name: "kron",
            class: GraphClass::GenScaleFree,
            graph: rmat(
                21u32.saturating_sub(shrink).max(10),
                43,
                RmatParams::default(),
                seed ^ 0x05,
            ),
        },
        "rmat-22" => Dataset {
            name: "rmat-22",
            class: GraphClass::GenScaleFree,
            graph: rmat(
                22u32.saturating_sub(shrink).max(10),
                64,
                RmatParams::default(),
                seed ^ 0x06,
            ),
        },
        "rmat-23" => Dataset {
            name: "rmat-23",
            class: GraphClass::GenScaleFree,
            graph: rmat(
                23u32.saturating_sub(shrink).max(10),
                32,
                RmatParams::default(),
                seed ^ 0x07,
            ),
        },
        "rmat-24" => Dataset {
            name: "rmat-24",
            class: GraphClass::GenScaleFree,
            graph: rmat(
                24u32.saturating_sub(shrink).max(10),
                16,
                RmatParams::default(),
                seed ^ 0x08,
            ),
        },
        "rgg" => Dataset {
            name: "rgg",
            class: GraphClass::GenMesh,
            graph: {
                let n = shrunk(16_800_000, shrink);
                rgg(n, radius_for_degree(n, 16.0), seed ^ 0x09)
            },
        },
        "roadnet" => Dataset {
            name: "roadnet",
            class: GraphClass::RealMesh,
            graph: {
                let side = mesh_side(shrunk(2_000_000, shrink));
                road_mesh(side, side, RoadParams::default(), seed ^ 0x0a)
            },
        },
        "road_usa" => Dataset {
            name: "road_usa",
            class: GraphClass::RealMesh,
            graph: {
                let side = mesh_side(shrunk(23_900_000, shrink));
                road_mesh(side, side, RoadParams::default(), seed ^ 0x0b)
            },
        },
        _ => return None,
    };
    Some(d)
}

/// Generate the full 11-dataset suite in Table 3 order.
#[must_use]
pub fn suite(shrink: u32, seed: u64) -> Vec<Dataset> {
    DATASET_NAMES
        .iter()
        .map(|name| dataset(name, shrink, seed).expect("known name"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphblas_matrix::GraphStats;

    #[test]
    fn all_names_resolve() {
        for name in DATASET_NAMES {
            let d = dataset(name, 9, 1).expect("resolves");
            assert_eq!(d.name, name);
            assert!(d.graph.n_vertices() >= 1024);
            assert!(d.graph.is_symmetric());
        }
        assert!(dataset("nonsense", 9, 1).is_none());
    }

    #[test]
    fn classes_match_table3() {
        let classes: Vec<GraphClass> = suite(9, 1).iter().map(|d| d.class).collect();
        assert_eq!(classes[0], GraphClass::RealScaleFree);
        assert_eq!(classes[4], GraphClass::GenScaleFree);
        assert_eq!(classes[8], GraphClass::GenMesh);
        assert_eq!(classes[10], GraphClass::RealMesh);
        assert_eq!(GraphClass::RealMesh.code(), "rm");
        assert!(GraphClass::GenScaleFree.is_scale_free());
        assert!(!GraphClass::GenMesh.is_scale_free());
    }

    #[test]
    fn scale_free_vs_mesh_structure() {
        let kron = dataset("kron", 8, 2).unwrap();
        let road = dataset("roadnet", 8, 2).unwrap();
        let ks = GraphStats::compute(kron.graph.csr());
        let rs = GraphStats::compute(road.graph.csr());
        assert!(ks.max_degree as f64 > 20.0 * ks.avg_degree, "kron has hubs");
        assert!(rs.max_degree <= 12, "roads do not");
        assert!(
            rs.pseudo_diameter > 10 * ks.pseudo_diameter.max(1),
            "roads are deep: {} vs {}",
            rs.pseudo_diameter,
            ks.pseudo_diameter
        );
    }

    #[test]
    fn shrink_controls_size() {
        let big = dataset("kron", 7, 3).unwrap();
        let small = dataset("kron", 9, 3).unwrap();
        assert!(big.graph.n_vertices() > small.graph.n_vertices());
    }
}
