//! Chung-Lu power-law graphs: the `rs` (real scale-free) stand-in.
//!
//! soc-orkut, soc-LiveJournal1, hollywood-09 and indochina-04 are social/
//! web crawls whose defining structure is a power-law degree distribution —
//! a few supervertices with 10⁴–10⁵ neighbors and a short (≤ 26-hop)
//! diameter. Chung-Lu sampling reproduces exactly that: vertex `i` gets
//! expected weight `w_i ∝ (i + i₀)^(−1/(γ−1))` and edges are sampled with
//! probability proportional to `w_u · w_v`, realized here by inverse-CDF
//! sampling of both endpoints from the weight distribution.

use crate::finish_undirected;
use graphblas_matrix::{Coo, Graph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Parameters for the Chung-Lu sampler.
#[derive(Clone, Copy, Debug)]
pub struct PowerLawParams {
    /// Power-law exponent γ of the target degree distribution (2 < γ ≤ 3
    /// for social networks; smaller is more skewed).
    pub gamma: f64,
    /// Offset i₀ damping the largest weights (larger ⇒ milder hubs).
    pub offset: f64,
}

impl Default for PowerLawParams {
    fn default() -> Self {
        Self {
            gamma: 2.2,
            offset: 8.0,
        }
    }
}

/// Sample an undirected power-law graph with `n` vertices and about
/// `edge_factor · n` edge samples (cleaning removes duplicates/loops).
#[must_use]
pub fn chung_lu(n: usize, edge_factor: usize, params: PowerLawParams, seed: u64) -> Graph<bool> {
    assert!(n >= 2);
    assert!(
        params.gamma > 2.0,
        "gamma must exceed 2 for finite mean degree"
    );
    let m = n * edge_factor;

    // Weights w_i = (i + offset)^(-alpha); cumulative table for inverse-CDF
    // endpoint sampling.
    let alpha = 1.0 / (params.gamma - 1.0);
    let mut cum = Vec::with_capacity(n + 1);
    cum.push(0.0f64);
    let mut total = 0.0f64;
    for i in 0..n {
        total += (i as f64 + params.offset).powf(-alpha);
        cum.push(total);
    }

    let sample = |r: f64| -> u32 {
        // Binary search the cumulative table.
        let target = r * total;
        let mut lo = 0usize;
        let mut hi = n;
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            if cum[mid] <= target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo as u32
    };

    // Fixed chunk count so the RNG streams — and the generated graph —
    // are identical at every thread count (see `rmat` for the rationale).
    let chunks = crate::RNG_CHUNKS;
    let per_chunk = m.div_ceil(chunks);
    let edges: Vec<(u32, u32)> = (0..chunks)
        .into_par_iter()
        .flat_map_iter(|chunk| {
            let mut rng = StdRng::seed_from_u64(seed ^ (chunk as u64).wrapping_mul(0x517c_c1b7));
            let count = per_chunk.min(m.saturating_sub(chunk * per_chunk));
            let sample = &sample;
            (0..count).map(move |_| (sample(rng.gen()), sample(rng.gen())))
        })
        .collect();

    let mut coo = Coo::new(n, n);
    coo.reserve(edges.len());
    for (u, v) in edges {
        coo.push(u, v, true);
    }
    finish_undirected(coo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphblas_matrix::GraphStats;

    #[test]
    fn shape_and_determinism() {
        let g = chung_lu(4096, 16, PowerLawParams::default(), 9);
        assert_eq!(g.n_vertices(), 4096);
        assert!(g.is_symmetric());
        let h = chung_lu(4096, 16, PowerLawParams::default(), 9);
        assert_eq!(g.csr().col_ind(), h.csr().col_ind());
    }

    #[test]
    fn produces_supervertices_and_small_world() {
        let g = chung_lu(8192, 16, PowerLawParams::default(), 13);
        let s = GraphStats::compute(g.csr());
        assert!(
            s.max_degree as f64 > 15.0 * s.avg_degree,
            "expected hubs: max {} avg {}",
            s.max_degree,
            s.avg_degree
        );
        assert!(s.pseudo_diameter <= 12, "diameter {}", s.pseudo_diameter);
    }

    #[test]
    fn gamma_controls_skew() {
        let sharp = chung_lu(
            8192,
            16,
            PowerLawParams {
                gamma: 2.1,
                offset: 4.0,
            },
            21,
        );
        let mild = chung_lu(
            8192,
            16,
            PowerLawParams {
                gamma: 2.9,
                offset: 4.0,
            },
            21,
        );
        let s_sharp = GraphStats::compute(sharp.csr());
        let s_mild = GraphStats::compute(mild.csr());
        assert!(
            s_sharp.max_degree > s_mild.max_degree,
            "smaller gamma must give bigger hubs ({} vs {})",
            s_sharp.max_degree,
            s_mild.max_degree
        );
    }
}
