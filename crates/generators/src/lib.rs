//! Synthetic graph generators standing in for the paper's datasets.
//!
//! The paper evaluates on 11 graphs (Table 3) in four classes: real
//! scale-free (`rs`: soc-orkut, soc-LiveJournal1, hollywood-09,
//! indochina-04), generated scale-free (`gs`: kron_g500-logn21, rmat-22/23/
//! 24), generated mesh (`gm`: rgg_n_24), and real mesh (`rm`: roadNet_CA,
//! road_USA). The originals are multi-hundred-MB downloads; this crate
//! generates structurally equivalent stand-ins:
//!
//! * [`rmat`] — R-MAT/Kronecker with Graph500 parameters. kron and rmat-*
//!   were generated graphs in the paper too, so these are near-exact.
//! * [`powerlaw`] — Chung-Lu graphs with power-law expected degrees for the
//!   `rs` class (supervertices + low diameter, the two properties the
//!   paper's push-pull analysis keys on).
//! * [`rgg`] — random geometric graph on the unit square (`gm`).
//! * [`grid`] — 2-D road-style mesh with jittered connectivity (`rm`:
//!   bounded degree, thousands-deep BFS).
//! * [`erdos`] — Erdős–Rényi, used by tests as an unstructured control.
//! * [`smallworld`] — Watts-Strogatz, a mesh↔random dial for probing the
//!   direction-switch heuristic between the paper's dataset classes.
//! * [`suite()`](suite::suite) — the named 11-dataset stand-in suite behind Table 3 /
//!   Figure 7, scaled down by default and scalable back up to paper size.
//!
//! All generators are deterministic given a seed, produce cleaned
//! undirected graphs (self-loops and duplicates removed, symmetrized — the
//! paper's §7.1 preparation), and return [`graphblas_matrix::Graph`].

pub mod erdos;
pub mod grid;
pub mod powerlaw;
pub mod rgg;
pub mod rmat;
pub mod smallworld;
pub mod suite;

pub use suite::{suite, Dataset, GraphClass};

use graphblas_matrix::{Coo, Csr, Graph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of per-chunk RNG streams the sampling generators draw from.
///
/// A fixed constant — deliberately *not* the thread count — so a given
/// `(generator, seed)` pair produces the same graph whatever
/// `PUSH_PULL_THREADS` says: the worker pool distributes these chunks by
/// index stealing, and the stream layout never moves. 64 chunks keeps
/// every realistic lane count busy.
pub const RNG_CHUNKS: usize = 64;

/// Finish a raw edge list into an undirected Boolean graph: §7.1 cleaning
/// then CSR conversion with the transpose shared.
#[must_use]
pub fn finish_undirected(mut coo: Coo<bool>) -> Graph<bool> {
    coo.clean_undirected();
    Graph::from_symmetric_csr(Csr::from_coo(&coo))
}

/// Attach uniform-random edge weights in `(0, 1]` to a Boolean graph,
/// symmetrically (weight(u,v) = weight(v,u)), for SSSP workloads.
#[must_use]
pub fn with_uniform_weights(g: &Graph<bool>, seed: u64) -> Graph<f32> {
    let a = g.csr();
    let mut rng = StdRng::seed_from_u64(seed);
    // Deterministic symmetric weight: hash the unordered pair via a
    // per-graph random salt mixed with a pair-symmetric combiner.
    let salt: u64 = rng.gen();
    let weight = |u: u32, v: u32| -> f32 {
        let (lo, hi) = if u < v { (u, v) } else { (v, u) };
        let mut h = ((u64::from(lo) << 32) | u64::from(hi)) ^ salt;
        // splitmix64 finalizer.
        h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        // Map to (0, 1].
        ((h >> 11) as f32 / (1u64 << 53) as f32).max(f32::MIN_POSITIVE)
    };
    let mut coo = Coo::new(a.n_rows(), a.n_cols());
    coo.reserve(a.nnz());
    for u in 0..a.n_rows() {
        for &v in a.row(u) {
            coo.push(u as u32, v, weight(u as u32, v));
        }
    }
    Graph::from_csr(Csr::from_coo(&coo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::erdos::erdos_renyi;

    #[test]
    fn finish_produces_symmetric_graph() {
        let mut coo = Coo::new(4, 4);
        coo.push(0, 1, true);
        coo.push(1, 1, true); // self loop must vanish
        coo.push(0, 1, true); // duplicate must vanish
        coo.push(2, 3, true);
        let g = finish_undirected(coo);
        assert!(g.is_symmetric());
        assert_eq!(g.n_edges(), 4); // {0,1} and {2,3}, both directions
    }

    #[test]
    fn weights_are_symmetric_and_positive() {
        let g = erdos_renyi(200, 1000, 7);
        let w = with_uniform_weights(&g, 99);
        let a = w.csr();
        for u in 0..a.n_rows() {
            for (idx, &v) in a.row(u).iter().enumerate() {
                let wuv = a.row_values(u)[idx];
                assert!(wuv > 0.0 && wuv <= 1.0);
                let back = w
                    .csr()
                    .row(v as usize)
                    .iter()
                    .position(|&x| x == u as u32)
                    .expect("symmetric edge");
                assert_eq!(w.csr().row_values(v as usize)[back], wuv);
            }
        }
    }

    #[test]
    fn weights_deterministic_per_seed() {
        let g = erdos_renyi(100, 400, 3);
        let w1 = with_uniform_weights(&g, 5);
        let w2 = with_uniform_weights(&g, 5);
        assert_eq!(w1.csr().values(), w2.csr().values());
    }
}
