//! Watts-Strogatz small-world graphs: a ring lattice with random rewiring.
//!
//! Not one of the paper's dataset classes, but a useful *probe* between
//! them: at rewiring probability 0 it is a pure mesh (deep BFS, push-only
//! optimal), at 1 it approaches a random graph (shallow BFS), and sweeping
//! the probability moves the push/pull crossover continuously — handy for
//! stress-testing the §6.3 heuristic away from the regimes it was tuned on.

use crate::finish_undirected;
use graphblas_matrix::{Coo, Graph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generate a Watts-Strogatz graph: `n` vertices on a ring, each joined to
/// its `k` nearest neighbors on each side, with every edge rewired to a
/// random endpoint with probability `beta`.
#[must_use]
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Graph<bool> {
    assert!(n >= 4, "need at least 4 vertices");
    assert!(
        k >= 1 && 2 * k < n,
        "neighborhood must be smaller than the ring"
    );
    assert!((0.0..=1.0).contains(&beta), "beta is a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = Coo::new(n, n);
    coo.reserve(n * k);
    for u in 0..n {
        for offset in 1..=k {
            let v = (u + offset) % n;
            if rng.gen::<f64>() < beta {
                // Rewire: keep u, pick a random non-self target.
                let mut t = rng.gen_range(0..n);
                while t == u {
                    t = rng.gen_range(0..n);
                }
                coo.push(u as u32, t as u32, true);
            } else {
                coo.push(u as u32, v as u32, true);
            }
        }
    }
    finish_undirected(coo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphblas_matrix::GraphStats;

    #[test]
    fn lattice_limit_is_a_ring() {
        let g = watts_strogatz(100, 2, 0.0, 1);
        let s = GraphStats::compute(g.csr());
        assert_eq!(s.max_degree, 4, "k=2 ring has degree 4 everywhere");
        assert_eq!(s.reached, 100, "ring is connected");
        assert!(
            s.pseudo_diameter >= 20,
            "lattice is deep: {}",
            s.pseudo_diameter
        );
    }

    #[test]
    fn rewiring_shrinks_the_diameter() {
        let lattice = GraphStats::compute(watts_strogatz(2000, 3, 0.0, 7).csr());
        let small_world = GraphStats::compute(watts_strogatz(2000, 3, 0.2, 7).csr());
        assert!(
            small_world.pseudo_diameter * 3 < lattice.pseudo_diameter,
            "shortcuts collapse the diameter: {} vs {}",
            small_world.pseudo_diameter,
            lattice.pseudo_diameter
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = watts_strogatz(500, 2, 0.1, 3);
        let b = watts_strogatz(500, 2, 0.1, 3);
        assert_eq!(a.csr().col_ind(), b.csr().col_ind());
    }

    #[test]
    fn edge_count_bounded_by_construction() {
        let g = watts_strogatz(300, 3, 0.5, 9);
        // ≤ n·k undirected edges before dedup; stored twice.
        assert!(g.n_edges() <= 2 * 300 * 3);
        assert!(
            g.n_edges() >= 300 * 3,
            "rewiring rarely collides everything"
        );
    }
}
