//! Erdős–Rényi `G(n, m)` graphs — the unstructured control used by tests
//! and the cost-model microbenchmarks (Figure 2 uses *random* input
//! vectors; an ER graph is the matching "no supervertices" matrix).

use crate::finish_undirected;
use graphblas_matrix::{Coo, Graph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sample an undirected graph with `n` vertices and about `m` distinct
/// edges (duplicates and self-loops are cleaned, so slightly fewer may
/// remain).
#[must_use]
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> Graph<bool> {
    assert!(n >= 2, "need at least two vertices");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = Coo::new(n, n);
    coo.reserve(m);
    for _ in 0..m {
        let u = rng.gen_range(0..n) as u32;
        let v = rng.gen_range(0..n) as u32;
        coo.push(u, v, true);
    }
    finish_undirected(coo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphblas_matrix::GraphStats;

    #[test]
    fn basic_shape() {
        let g = erdos_renyi(1000, 5000, 11);
        assert_eq!(g.n_vertices(), 1000);
        assert!(g.n_edges() <= 2 * 5000);
        assert!(g.n_edges() > 8000, "most sampled edges survive cleaning");
        assert!(g.is_symmetric());
    }

    #[test]
    fn deterministic() {
        let a = erdos_renyi(500, 2000, 3);
        let b = erdos_renyi(500, 2000, 3);
        assert_eq!(a.csr().col_ind(), b.csr().col_ind());
    }

    #[test]
    fn degrees_are_balanced() {
        let g = erdos_renyi(2000, 20_000, 5);
        let s = GraphStats::compute(g.csr());
        assert!(
            (s.max_degree as f64) < 4.0 * s.avg_degree,
            "ER should have no supervertices: max {} avg {}",
            s.max_degree,
            s.avg_degree
        );
    }
}
