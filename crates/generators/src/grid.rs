//! Road-network-style mesh — the roadNet_CA / road_USA (`rm`) stand-in.
//!
//! Road networks have degree ≤ ~12, huge diameter (849 and 6809 in Table
//! 3), and near-planar structure. A 2-D grid with a fraction of edges
//! knocked out (dead ends) and occasional diagonal shortcuts reproduces
//! those properties: BFS runs for thousands of levels with small frontiers,
//! which is why push-only beats direction optimization there (§7.3).

use crate::finish_undirected;
use graphblas_matrix::{Coo, Graph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for the road mesh.
#[derive(Clone, Copy, Debug)]
pub struct RoadParams {
    /// Probability each lattice edge is kept.
    pub keep: f64,
    /// Probability of adding a diagonal shortcut at a cell.
    pub diagonal: f64,
}

impl Default for RoadParams {
    fn default() -> Self {
        Self {
            keep: 0.92,
            diagonal: 0.05,
        }
    }
}

/// Generate a `width × height` road-style mesh.
#[must_use]
pub fn road_mesh(width: usize, height: usize, params: RoadParams, seed: u64) -> Graph<bool> {
    assert!(width >= 2 && height >= 2);
    let n = width * height;
    let mut rng = StdRng::seed_from_u64(seed);
    let id = |x: usize, y: usize| (y * width + x) as u32;
    let mut coo = Coo::new(n, n);
    coo.reserve(2 * n);
    for y in 0..height {
        for x in 0..width {
            if x + 1 < width && rng.gen::<f64>() < params.keep {
                coo.push(id(x, y), id(x + 1, y), true);
            }
            if y + 1 < height && rng.gen::<f64>() < params.keep {
                coo.push(id(x, y), id(x, y + 1), true);
            }
            if x + 1 < width && y + 1 < height && rng.gen::<f64>() < params.diagonal {
                coo.push(id(x, y), id(x + 1, y + 1), true);
            }
        }
    }
    finish_undirected(coo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphblas_matrix::GraphStats;

    #[test]
    fn grid_shape() {
        let g = road_mesh(50, 40, RoadParams::default(), 3);
        assert_eq!(g.n_vertices(), 2000);
        assert!(g.is_symmetric());
        let s = GraphStats::compute(g.csr());
        assert!(s.max_degree <= 12, "road max degree {}", s.max_degree);
    }

    #[test]
    fn diameter_scales_with_side() {
        let small = GraphStats::compute(road_mesh(30, 30, RoadParams::default(), 7).csr());
        let large = GraphStats::compute(road_mesh(90, 90, RoadParams::default(), 7).csr());
        assert!(
            large.pseudo_diameter > 2 * small.pseudo_diameter,
            "diameters {} vs {}",
            small.pseudo_diameter,
            large.pseudo_diameter
        );
        assert!(small.pseudo_diameter >= 30);
    }

    #[test]
    fn full_keep_is_connected_lattice() {
        let g = road_mesh(
            20,
            20,
            RoadParams {
                keep: 1.0,
                diagonal: 0.0,
            },
            1,
        );
        let s = GraphStats::compute(g.csr());
        assert_eq!(s.reached, 400, "perfect lattice is connected");
        assert_eq!(s.pseudo_diameter, 38);
    }

    #[test]
    fn deterministic() {
        let a = road_mesh(25, 25, RoadParams::default(), 9);
        let b = road_mesh(25, 25, RoadParams::default(), 9);
        assert_eq!(a.csr().col_ind(), b.csr().col_ind());
    }
}
