//! Random geometric graph — the `rgg_n_24` (generated mesh) stand-in.
//!
//! `n` points uniform on the unit square, an edge between every pair within
//! distance `radius`. With `radius ≈ sqrt(k / (π n))`, average degree ≈ k.
//! The paper's rgg has average degree ~16 and diameter 2622: bounded degree
//! and a long, thin BFS profile — the regime where direction optimization
//! stops paying off (§7.3). A uniform cell grid of side `radius` makes
//! generation O(n · k).

use crate::finish_undirected;
use graphblas_matrix::{Coo, Graph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generate a random geometric graph with `n` vertices and connection
/// radius `radius` (in [0, 1]).
#[must_use]
pub fn rgg(n: usize, radius: f64, seed: u64) -> Graph<bool> {
    assert!(n >= 2);
    assert!(radius > 0.0 && radius <= 1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let points: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen(), rng.gen())).collect();

    // Bucket points into a grid of cell size = radius; neighbors can only
    // be in the 3×3 surrounding cells.
    let cells_per_side = ((1.0 / radius).floor() as usize).max(1);
    let cell_of = |x: f64, y: f64| -> (usize, usize) {
        let cx = ((x * cells_per_side as f64) as usize).min(cells_per_side - 1);
        let cy = ((y * cells_per_side as f64) as usize).min(cells_per_side - 1);
        (cx, cy)
    };
    let mut grid: Vec<Vec<u32>> = vec![Vec::new(); cells_per_side * cells_per_side];
    for (i, &(x, y)) in points.iter().enumerate() {
        let (cx, cy) = cell_of(x, y);
        grid[cy * cells_per_side + cx].push(i as u32);
    }

    let r2 = radius * radius;
    let mut coo = Coo::new(n, n);
    for (i, &(x, y)) in points.iter().enumerate() {
        let (cx, cy) = cell_of(x, y);
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                let nx = cx as i64 + dx;
                let ny = cy as i64 + dy;
                if nx < 0 || ny < 0 || nx >= cells_per_side as i64 || ny >= cells_per_side as i64 {
                    continue;
                }
                for &j in &grid[ny as usize * cells_per_side + nx as usize] {
                    // Emit each pair once (i < j); symmetrize handles the rest.
                    if (j as usize) <= i {
                        continue;
                    }
                    let (px, py) = points[j as usize];
                    let (ddx, ddy) = (px - x, py - y);
                    if ddx * ddx + ddy * ddy <= r2 {
                        coo.push(i as u32, j, true);
                    }
                }
            }
        }
    }
    finish_undirected(coo)
}

/// Radius giving expected average degree `k` on `n` uniform points.
#[must_use]
pub fn radius_for_degree(n: usize, k: f64) -> f64 {
    (k / (std::f64::consts::PI * n as f64)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphblas_matrix::GraphStats;

    #[test]
    fn degree_matches_target() {
        let n = 20_000;
        let g = rgg(n, radius_for_degree(n, 16.0), 17);
        let s = GraphStats::compute(g.csr());
        // avg_degree counts directed edges; expect ≈ 16.
        assert!(
            (s.avg_degree - 16.0).abs() < 3.0,
            "avg degree {}",
            s.avg_degree
        );
    }

    #[test]
    fn mesh_has_bounded_degree_and_long_diameter() {
        let n = 20_000;
        let g = rgg(n, radius_for_degree(n, 14.0), 23);
        let s = GraphStats::compute(g.csr());
        assert!(s.max_degree < 60, "max degree {}", s.max_degree);
        assert!(
            s.pseudo_diameter > 20,
            "meshes are deep: diameter {}",
            s.pseudo_diameter
        );
    }

    #[test]
    fn deterministic() {
        let a = rgg(2000, 0.02, 5);
        let b = rgg(2000, 0.02, 5);
        assert_eq!(a.csr().col_ind(), b.csr().col_ind());
    }
}
