//! R-MAT / stochastic Kronecker generator.
//!
//! `kron_g500-logn21` and the `rmat_s22/23/24` graphs of Table 3 are
//! Graph500-style Kronecker graphs. Each edge picks a quadrant of the
//! adjacency matrix recursively `scale` times with probabilities
//! `(a, b, c, d)`; Graph500 uses `(0.57, 0.19, 0.19, 0.05)`, which yields
//! the heavy-tailed degree distribution (supervertices) and ~6-hop diameter
//! the paper's direction switching exploits.

use crate::finish_undirected;
use graphblas_matrix::{Coo, Graph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// R-MAT quadrant probabilities.
#[derive(Clone, Copy, Debug)]
pub struct RmatParams {
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
}

impl Default for RmatParams {
    /// Graph500 parameters (d = 1 − a − b − c = 0.05).
    fn default() -> Self {
        Self {
            a: 0.57,
            b: 0.19,
            c: 0.19,
        }
    }
}

/// Generate an undirected R-MAT graph with `2^scale` vertices and
/// `edge_factor · 2^scale` sampled edges (before §7.1 cleaning, which
/// removes duplicates and self-loops, so the stored count lands below the
/// nominal figure exactly as in the published datasets).
#[must_use]
pub fn rmat(scale: u32, edge_factor: usize, params: RmatParams, seed: u64) -> Graph<bool> {
    assert!((1..31).contains(&scale), "scale out of supported range");
    let n = 1usize << scale;
    let m = edge_factor * n;
    let ab = params.a + params.b;
    let abc = ab + params.c;
    assert!(abc < 1.0 + 1e-9, "quadrant probabilities exceed 1");

    // Sample edges in parallel chunks, each chunk with its own
    // deterministic RNG stream. The chunk count is a fixed constant —
    // *not* the thread count — so the sampled edge list (and therefore
    // every downstream result) is identical at every PUSH_PULL_THREADS
    // setting; the pool distributes the chunks by index stealing.
    let chunks = crate::RNG_CHUNKS;
    let per_chunk = m.div_ceil(chunks);
    let edges: Vec<(u32, u32)> = (0..chunks)
        .into_par_iter()
        .flat_map_iter(|chunk| {
            let mut rng = StdRng::seed_from_u64(seed ^ (chunk as u64).wrapping_mul(0x9e37_79b9));
            let count = per_chunk.min(m.saturating_sub(chunk * per_chunk));
            (0..count).map(move |_| {
                let (mut u, mut v) = (0u32, 0u32);
                for _ in 0..scale {
                    let r: f64 = rng.gen();
                    let (bit_u, bit_v) = if r < params.a {
                        (0, 0)
                    } else if r < ab {
                        (0, 1)
                    } else if r < abc {
                        (1, 0)
                    } else {
                        (1, 1)
                    };
                    u = (u << 1) | bit_u;
                    v = (v << 1) | bit_v;
                }
                (u, v)
            })
        })
        .collect();

    let mut coo = Coo::new(n, n);
    coo.reserve(edges.len());
    for (u, v) in edges {
        coo.push(u, v, true);
    }
    finish_undirected(coo)
}

/// The paper's `kron` stand-in at a given scale: edge factor chosen so the
/// edges-per-vertex ratio matches kron_g500-logn21 (182.1 M / 2.1 M ≈ 87
/// directed ≈ 43 undirected samples per vertex).
#[must_use]
pub fn kron_like(scale: u32, seed: u64) -> Graph<bool> {
    rmat(scale, 43, RmatParams::default(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphblas_matrix::GraphStats;

    #[test]
    fn sizes_scale_with_parameters() {
        let g = rmat(10, 8, RmatParams::default(), 1);
        assert_eq!(g.n_vertices(), 1024);
        // After dedup/symmetrize the count differs from 2*8*1024, but must
        // be in a sane band.
        assert!(g.n_edges() > 4 * 1024, "too few edges: {}", g.n_edges());
        assert!(g.n_edges() < 2 * 2 * 8 * 1024);
        assert!(g.is_symmetric());
    }

    #[test]
    fn deterministic_for_seed() {
        let a = rmat(8, 8, RmatParams::default(), 42);
        let b = rmat(8, 8, RmatParams::default(), 42);
        assert_eq!(a.csr().col_ind(), b.csr().col_ind());
        let c = rmat(8, 8, RmatParams::default(), 43);
        assert_ne!(a.csr().col_ind(), c.csr().col_ind());
    }

    #[test]
    fn skewed_parameters_make_supervertices() {
        let g = rmat(12, 16, RmatParams::default(), 7);
        let s = GraphStats::compute(g.csr());
        // Scale-free signature: max degree far above the mean.
        assert!(
            s.max_degree as f64 > 10.0 * s.avg_degree,
            "max {} vs avg {}",
            s.max_degree,
            s.avg_degree
        );
        // Small world: shallow BFS from inside the giant component.
        assert!(s.pseudo_diameter <= 10, "diameter {}", s.pseudo_diameter);
    }

    #[test]
    fn uniform_parameters_are_not_skewed() {
        let flat = RmatParams {
            a: 0.25,
            b: 0.25,
            c: 0.25,
        };
        let g = rmat(12, 16, flat, 7);
        let s = GraphStats::compute(g.csr());
        assert!(
            (s.max_degree as f64) < 6.0 * s.avg_degree,
            "uniform quadrants should look Erdős–Rényi-ish, max {} avg {}",
            s.max_degree,
            s.avg_degree
        );
    }
}
