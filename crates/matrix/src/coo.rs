//! Coordinate-format (triplet) matrix builder.
//!
//! All generators and file readers produce a [`Coo`], which supports the
//! dataset-preparation steps from §7.1 of the paper — "All datasets have
//! been converted to undirected graphs. Self-loops and duplicated edges are
//! removed." — before conversion to CSR.

use crate::VertexId;

/// A sparse matrix held as unsorted `(row, col, value)` triplets.
#[derive(Clone, Debug)]
pub struct Coo<V> {
    n_rows: usize,
    n_cols: usize,
    entries: Vec<(VertexId, VertexId, V)>,
}

impl<V: Copy> Coo<V> {
    /// Empty COO of the given dimensions.
    #[must_use]
    pub fn new(n_rows: usize, n_cols: usize) -> Self {
        assert!(n_rows <= u32::MAX as usize && n_cols <= u32::MAX as usize);
        Self {
            n_rows,
            n_cols,
            entries: Vec::new(),
        }
    }

    /// Build from an existing triplet list.
    #[must_use]
    pub fn from_entries(
        n_rows: usize,
        n_cols: usize,
        entries: Vec<(VertexId, VertexId, V)>,
    ) -> Self {
        let mut coo = Self::new(n_rows, n_cols);
        for &(r, c, _) in &entries {
            assert!(
                (r as usize) < n_rows && (c as usize) < n_cols,
                "entry out of bounds"
            );
        }
        coo.entries = entries;
        coo
    }

    /// Number of rows.
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[must_use]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored triplets (before dedup).
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Stored triplets.
    #[must_use]
    pub fn entries(&self) -> &[(VertexId, VertexId, V)] {
        &self.entries
    }

    /// Append one triplet.
    pub fn push(&mut self, row: VertexId, col: VertexId, value: V) {
        debug_assert!((row as usize) < self.n_rows && (col as usize) < self.n_cols);
        self.entries.push((row, col, value));
    }

    /// Reserve capacity for `additional` more triplets.
    pub fn reserve(&mut self, additional: usize) {
        self.entries.reserve(additional);
    }

    /// Remove `(i, i)` triplets.
    pub fn remove_self_loops(&mut self) {
        self.entries.retain(|&(r, c, _)| r != c);
    }

    /// Add the reverse of every edge, making the pattern symmetric
    /// (undirected). Values are copied onto the mirrored edge. Duplicates
    /// introduced here are collapsed by [`Coo::dedup`] / CSR conversion.
    pub fn symmetrize(&mut self) {
        assert_eq!(
            self.n_rows, self.n_cols,
            "symmetrize requires a square matrix"
        );
        let mirrored: Vec<(VertexId, VertexId, V)> = self
            .entries
            .iter()
            .filter(|&&(r, c, _)| r != c)
            .map(|&(r, c, v)| (c, r, v))
            .collect();
        self.entries.extend(mirrored);
    }

    /// Sort triplets by (row, col) and collapse duplicates with `combine`.
    pub fn dedup<F: Fn(V, V) -> V>(&mut self, combine: F) {
        self.entries
            .sort_unstable_by_key(|&(r, c, _)| ((r as u64) << 32) | c as u64);
        let mut write = 0usize;
        for read in 0..self.entries.len() {
            if write > 0
                && self.entries[write - 1].0 == self.entries[read].0
                && self.entries[write - 1].1 == self.entries[read].1
            {
                self.entries[write - 1].2 =
                    combine(self.entries[write - 1].2, self.entries[read].2);
            } else {
                self.entries[write] = self.entries[read];
                write += 1;
            }
        }
        self.entries.truncate(write);
    }

    /// §7.1 dataset preparation in one call: drop self-loops, symmetrize,
    /// and collapse duplicate edges keeping the first value.
    pub fn clean_undirected(&mut self) {
        self.remove_self_loops();
        self.symmetrize();
        self.dedup(|a, _| a);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Coo<f32> {
        let mut coo = Coo::new(4, 4);
        coo.push(0, 1, 1.0);
        coo.push(1, 2, 2.0);
        coo.push(2, 2, 9.0); // self-loop
        coo.push(0, 1, 5.0); // duplicate
        coo.push(3, 0, 4.0);
        coo
    }

    #[test]
    fn push_and_counts() {
        let coo = sample();
        assert_eq!(coo.n_rows(), 4);
        assert_eq!(coo.n_cols(), 4);
        assert_eq!(coo.nnz(), 5);
    }

    #[test]
    fn remove_self_loops_drops_diagonal_only() {
        let mut coo = sample();
        coo.remove_self_loops();
        assert_eq!(coo.nnz(), 4);
        assert!(coo.entries().iter().all(|&(r, c, _)| r != c));
    }

    #[test]
    fn dedup_combines_duplicates_in_order() {
        let mut coo = sample();
        coo.dedup(|a, b| a + b);
        // (0,1) collapses: 1.0 + 5.0.
        let e: Vec<_> = coo.entries().to_vec();
        assert_eq!(e.len(), 4);
        assert_eq!(e[0], (0, 1, 6.0));
        // Sorted by (row, col).
        assert!(e.windows(2).all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)));
    }

    #[test]
    fn symmetrize_mirrors_edges() {
        let mut coo = Coo::new(3, 3);
        coo.push(0, 1, 1.0f64);
        coo.push(1, 2, 2.0);
        coo.symmetrize();
        coo.dedup(|a, _| a);
        let e = coo.entries();
        assert_eq!(e.len(), 4);
        assert!(e.contains(&(1, 0, 1.0)));
        assert!(e.contains(&(2, 1, 2.0)));
    }

    #[test]
    fn clean_undirected_full_pipeline() {
        let mut coo = sample();
        coo.clean_undirected();
        // No self loops, symmetric pattern, no duplicates.
        let e = coo.entries();
        assert!(e.iter().all(|&(r, c, _)| r != c));
        for &(r, c, _) in e {
            assert!(
                e.iter().any(|&(r2, c2, _)| r2 == c && c2 == r),
                "missing mirror of ({r},{c})"
            );
        }
        let mut keys: Vec<(u32, u32)> = e.iter().map(|&(r, c, _)| (r, c)).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), e.len());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_entries_bounds_checked() {
        let _ = Coo::from_entries(2, 2, vec![(0u32, 5u32, 1.0f32)]);
    }
}
