//! 2D shard partition plan: cache-sized row × column stripes.
//!
//! `BENCH_scaling.json` shows the push (column) kernel scaling *below* 1×
//! on large graphs: every per-chunk SPA harvest funnels through one global
//! k-way merge, so adding lanes adds merge traffic faster than it adds
//! expansion throughput. The fix — standard in distributed GraphBLAS
//! backends and framed as the communication trade-off in Besta et al.'s
//! "To Push or To Pull" — is to partition the *output* dimension into
//! column stripes sized to the cache and let each worker own a stripe:
//! push collisions then resolve entirely within a stripe-local SPA and the
//! global merge barrier disappears, while pull streams one column stripe
//! of the frontier across a row tile at a time, bounding its working set.
//!
//! [`ShardPlan`] is the planning half: given any [`RowAccess`] store it
//! derives a [`ShardGrid`] from `nnz` and a configurable cache budget,
//! fixes the stripe boundaries, and records per-row-stripe column spans —
//! all priced O(n_rows) from the CSR row endpoints, exactly like
//! [`crate::storage::BitmapPlan`], and cached per orientation in the
//! graph's `FormatCache` so iterative algorithms pay the scan once.
//!
//! Stripe boundaries are a function of the matrix shape and the budget
//! alone — never of the lane count — so sharded kernels produce
//! bit-identical values and counters at every `PUSH_PULL_THREADS` setting,
//! the same determinism contract every other chunk layout in this repo
//! honors.

use crate::storage::RowAccess;
use crate::{Csr, VertexId};

/// Default per-stripe cache budget in bytes (half a typical per-core L2).
/// One column stripe's SPA slab plus its slice of the frontier should fit.
pub const DEFAULT_SHARD_BUDGET: usize = 256 * 1024;

/// Upper bound on stripes per dimension. 16 matches `MAX_SPAS` in the
/// unsharded SPA path: beyond ~16 stripes the per-stripe merge fan-in
/// stops shrinking while stripe bookkeeping keeps growing.
pub const MAX_STRIPES: usize = 16;

/// Bytes a stripe-local SPA charges per output slot (value + occupancy
/// word, rounded to keep the estimate conservative).
const SPA_SLOT_BYTES: usize = 16;

/// A shard grid: how many row stripes × column stripes a plan carves the
/// operand into. `1 × 1` means unsharded.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ShardGrid {
    /// Stripes along the row (traversal) dimension.
    pub row_stripes: u32,
    /// Stripes along the column (output) dimension.
    pub col_stripes: u32,
}

impl ShardGrid {
    /// The trivial grid: one tile covering the whole operand.
    pub const UNSHARDED: ShardGrid = ShardGrid {
        row_stripes: 1,
        col_stripes: 1,
    };

    /// A grid with both dimensions clamped into `1..=MAX_STRIPES`.
    #[must_use]
    pub fn new(row_stripes: u32, col_stripes: u32) -> Self {
        let max = MAX_STRIPES as u32;
        Self {
            row_stripes: row_stripes.clamp(1, max),
            col_stripes: col_stripes.clamp(1, max),
        }
    }

    /// Whether this grid is the trivial `1 × 1` partition.
    #[must_use]
    pub fn is_unsharded(self) -> bool {
        self.row_stripes == 1 && self.col_stripes == 1
    }
}

impl std::fmt::Display for ShardGrid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}", self.row_stripes, self.col_stripes)
    }
}

/// The 2D tile partition of one operand orientation: stripe boundaries
/// along both dimensions plus the per-row-stripe column spans the tiled
/// pull traversal streams. Built once per orientation (O(n_rows) over the
/// CSR row endpoints) and cached in the graph's format cache.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    n_rows: usize,
    n_cols: usize,
    nnz: usize,
    grid: ShardGrid,
    /// `row_stripes + 1` ascending boundaries; stripe `s` is rows
    /// `row_bounds[s]..row_bounds[s+1]`.
    row_bounds: Vec<u32>,
    /// `col_stripes + 1` ascending boundaries; stripe `s` is columns
    /// `col_bounds[s]..col_bounds[s+1]`.
    col_bounds: Vec<u32>,
    /// Per row stripe: `(lo, hi)` — the smallest/largest+1 column any of
    /// its rows stores, from the CSR row endpoints (`(0, 0)` when the
    /// stripe is empty). Bounds which column stripes a row stripe can
    /// touch at all.
    stripe_spans: Vec<(u32, u32)>,
}

impl ShardPlan {
    /// Plan a grid for `store` sized from `nnz` and `budget` bytes per
    /// stripe: column stripes narrow enough that a stripe-local SPA slab
    /// fits the budget, row stripes short enough that a stripe's share of
    /// the CSR payload does too.
    #[must_use]
    pub fn from_store<V, S: RowAccess<V> + ?Sized>(store: &S, budget: usize) -> Self {
        let grid = Self::grid_for(store.n_rows(), store.n_cols(), store.nnz(), budget);
        Self::with_grid(store, grid)
    }

    /// Plan the default-budget grid for a CSR — the form the per-
    /// orientation cache memoizes.
    #[must_use]
    pub fn from_csr<V: Copy + Send + Sync>(csr: &Csr<V>) -> Self {
        Self::from_store(csr, DEFAULT_SHARD_BUDGET)
    }

    /// Plan an explicitly requested grid (clamped to `1..=MAX_STRIPES`
    /// per dimension). Stripe widths are equal up to rounding, so `n` not
    /// divisible by the stripe count leaves the last stripes one narrower
    /// and a grid wider than `n` leaves trailing stripes empty.
    #[must_use]
    pub fn with_grid<V, S: RowAccess<V> + ?Sized>(store: &S, grid: ShardGrid) -> Self {
        let grid = ShardGrid::new(grid.row_stripes, grid.col_stripes);
        let n_rows = store.n_rows();
        let n_cols = store.n_cols();
        let row_bounds = bounds(n_rows, grid.row_stripes as usize);
        let col_bounds = bounds(n_cols, grid.col_stripes as usize);
        // O(n_rows) endpoint scan, like BitmapPlan: each row's span is its
        // first and last stored column (slices are sorted ascending).
        let mut stripe_spans = Vec::with_capacity(grid.row_stripes as usize);
        for s in 0..grid.row_stripes as usize {
            let (mut lo, mut hi) = (u32::MAX, 0u32);
            for i in row_bounds[s] as usize..row_bounds[s + 1] as usize {
                let row = store.row(i);
                if let (Some(&first), Some(&last)) = (row.first(), row.last()) {
                    lo = lo.min(first);
                    hi = hi.max(last + 1);
                }
            }
            stripe_spans.push(if lo == u32::MAX { (0, 0) } else { (lo, hi) });
        }
        Self {
            n_rows,
            n_cols,
            nnz: store.nnz(),
            grid,
            row_bounds,
            col_bounds,
            stripe_spans,
        }
    }

    /// The grid a given shape and budget resolve to. Pure shape math so
    /// the planner can price engagement without building a plan.
    #[must_use]
    pub fn grid_for(n_rows: usize, n_cols: usize, nnz: usize, budget: usize) -> ShardGrid {
        let budget = budget.max(1);
        // Column stripes: a stripe-local SPA slab over the stripe's output
        // slots must fit the budget.
        let cols_per_stripe = (budget / SPA_SLOT_BYTES).max(1);
        let col_stripes = n_cols.div_ceil(cols_per_stripe).max(1);
        // Row stripes: a stripe's share of the CSR payload (indices +
        // values, ~8 bytes per stored entry) must fit the budget.
        let bytes_per_row = 8 * nnz / n_rows.max(1) + 8;
        let rows_per_stripe = (budget / bytes_per_row.max(1)).max(1);
        let row_stripes = n_rows.div_ceil(rows_per_stripe).max(1);
        ShardGrid::new(row_stripes as u32, col_stripes as u32)
    }

    /// The planned grid.
    #[must_use]
    pub fn grid(&self) -> ShardGrid {
        self.grid
    }

    /// Rows of the planned operand.
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Columns of the planned operand.
    #[must_use]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Stored entries of the planned operand.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Number of column (output) stripes.
    #[must_use]
    pub fn n_col_stripes(&self) -> usize {
        self.grid.col_stripes as usize
    }

    /// Number of row (traversal) stripes.
    #[must_use]
    pub fn n_row_stripes(&self) -> usize {
        self.grid.row_stripes as usize
    }

    /// Half-open column range of stripe `s`.
    ///
    /// # Panics
    /// When `s` is not a valid column-stripe index.
    #[must_use]
    pub fn col_range(&self, s: usize) -> std::ops::Range<usize> {
        self.col_bounds[s] as usize..self.col_bounds[s + 1] as usize
    }

    /// Half-open row range of stripe `s`.
    ///
    /// # Panics
    /// When `s` is not a valid row-stripe index.
    #[must_use]
    pub fn row_range(&self, s: usize) -> std::ops::Range<usize> {
        self.row_bounds[s] as usize..self.row_bounds[s + 1] as usize
    }

    /// The column stripe that owns column `j` (clamped into range, so any
    /// vertex id maps to *some* stripe — the telemetry that attributes a
    /// write to its source's stripe stays total).
    #[must_use]
    pub fn col_stripe_of(&self, j: usize) -> usize {
        let j = j.min(self.n_cols.saturating_sub(1)) as u32;
        self.col_bounds.partition_point(|&b| b <= j).max(1) - 1
    }

    /// `(lo, hi)` column span stored by row stripe `s` (`(0, 0)` when the
    /// stripe holds no entries).
    ///
    /// # Panics
    /// When `s` is not a valid row-stripe index.
    #[must_use]
    pub fn stripe_span(&self, s: usize) -> (u32, u32) {
        self.stripe_spans[s]
    }

    /// Estimated bytes a full-width (unsharded) push SPA would occupy —
    /// the working set the `Auto` policy compares against the budget.
    #[must_use]
    pub fn dense_working_set_bytes(&self) -> usize {
        self.n_cols.saturating_mul(SPA_SLOT_BYTES)
    }

    /// Whether the planned grid actually partitions anything.
    #[must_use]
    pub fn engaged(&self) -> bool {
        !self.grid.is_unsharded()
    }
}

/// `k + 1` equal-width (up to rounding) ascending boundaries over `0..n`.
fn bounds(n: usize, k: usize) -> Vec<u32> {
    (0..=k).map(|i| ((i * n) / k) as VertexId).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    fn csr(n: usize, edges: &[(u32, u32)]) -> Csr<bool> {
        let mut coo = Coo::new(n, n);
        for &(r, c) in edges {
            coo.push(r, c, true);
        }
        Csr::from_coo(&coo)
    }

    #[test]
    fn shard_bounds_cover_and_ascend_even_when_indivisible() {
        // n = 65 over 4 stripes: widths 16/16/17/16 by the rounding rule —
        // whatever the split, bounds must cover 0..65 without gaps.
        let m = csr(65, &[(0, 64), (64, 0)]);
        let plan = ShardPlan::with_grid(&m, ShardGrid::new(4, 4));
        assert_eq!(plan.col_range(0).start, 0);
        assert_eq!(plan.col_range(3).end, 65);
        let mut covered = 0;
        for s in 0..plan.n_col_stripes() {
            let r = plan.col_range(s);
            assert_eq!(r.start, covered, "no gap");
            assert!(r.end >= r.start);
            covered = r.end;
        }
        assert_eq!(covered, 65);
        // Every column maps back into the stripe that contains it.
        for j in 0..65 {
            let s = plan.col_stripe_of(j);
            assert!(plan.col_range(s).contains(&j), "col {j} in stripe {s}");
        }
    }

    #[test]
    fn shard_grid_wider_than_n_leaves_empty_stripes() {
        let m = csr(3, &[(0, 1), (1, 2)]);
        let plan = ShardPlan::with_grid(&m, ShardGrid::new(1, 8));
        assert_eq!(plan.n_col_stripes(), 8);
        let empties = (0..8).filter(|&s| plan.col_range(s).is_empty()).count();
        assert_eq!(empties, 5, "3 columns over 8 stripes leaves 5 empty");
        assert_eq!(plan.col_range(7).end, 3);
    }

    #[test]
    fn shard_grid_clamps_to_limits() {
        let g = ShardGrid::new(0, 99);
        assert_eq!(g.row_stripes, 1);
        assert_eq!(g.col_stripes, MAX_STRIPES as u32);
        assert!(ShardGrid::UNSHARDED.is_unsharded());
        assert!(!g.is_unsharded());
        assert_eq!(format!("{}", ShardGrid::new(2, 4)), "2x4");
    }

    #[test]
    fn shard_spans_follow_row_endpoints() {
        // Rows 0..2 store only low columns, rows 2..4 only high ones.
        let m = csr(4, &[(0, 0), (1, 1), (2, 3), (3, 2)]);
        let plan = ShardPlan::with_grid(&m, ShardGrid::new(2, 2));
        assert_eq!(plan.stripe_span(0), (0, 2));
        assert_eq!(plan.stripe_span(1), (2, 4));
        // An empty row stripe reports an empty span.
        let empty = csr(4, &[(2, 3)]);
        let plan = ShardPlan::with_grid(&empty, ShardGrid::new(2, 2));
        assert_eq!(plan.stripe_span(0), (0, 0));
        assert_eq!(plan.stripe_span(1), (3, 4));
    }

    #[test]
    fn shard_grid_sizing_scales_with_shape_and_budget() {
        // Tiny operand: everything fits one tile.
        assert!(ShardPlan::grid_for(100, 100, 500, DEFAULT_SHARD_BUDGET).is_unsharded());
        // Wide operand: column dimension splits.
        let g = ShardPlan::grid_for(100_000, 100_000, 1_000_000, DEFAULT_SHARD_BUDGET);
        assert!(g.col_stripes > 1);
        // Shrinking the budget can only add stripes, never remove them.
        let tighter = ShardPlan::grid_for(100_000, 100_000, 1_000_000, DEFAULT_SHARD_BUDGET / 4);
        assert!(tighter.col_stripes >= g.col_stripes);
        assert!(tighter.row_stripes >= g.row_stripes);
        // And the clamp holds under absurd pressure.
        let clamped = ShardPlan::grid_for(1 << 30, 1 << 30, 1 << 33, 1);
        assert_eq!(clamped.col_stripes, MAX_STRIPES as u32);
        assert_eq!(clamped.row_stripes, MAX_STRIPES as u32);
    }

    #[test]
    fn shard_plan_is_shape_derived_only() {
        let m = csr(64, &[(0, 63), (63, 0), (10, 20)]);
        let a = ShardPlan::with_grid(&m, ShardGrid::new(3, 5));
        let b = ShardPlan::with_grid(&m, ShardGrid::new(3, 5));
        assert_eq!(a.col_bounds, b.col_bounds);
        assert_eq!(a.row_bounds, b.row_bounds);
        assert_eq!(a.stripe_spans, b.stripe_spans);
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.n_rows(), 64);
        assert_eq!(a.n_cols(), 64);
        assert!(a.dense_working_set_bytes() >= 64 * 16);
    }
}
