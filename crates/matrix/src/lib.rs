//! Sparse matrix storage for the push-pull GraphBLAS reproduction.
//!
//! The paper stores the graph's adjacency matrix twice: once row-major (CSR
//! of `A`, giving children / outgoing edges) and once as the transpose (CSR
//! of `Aᵀ`, i.e. CSC of `A`, giving parents / incoming edges). Row-based
//! matvec walks rows of the operand; column-based matvec fetches columns,
//! which are rows of the transpose (§3). [`Graph`] bundles both orientations
//! so the runtime direction switch never *computes* a transpose on the fly —
//! a `Descriptor::transpose` request is satisfied by swapping which of the
//! two prebuilt CSRs plays the `operand`/`operand_t` role (see the operand
//! resolution at the top of `graphblas_core`'s `mxv` and `mxv_batch`
//! dispatchers), so honoring the flag costs a pointer swap, not a rebuild.
//!
//! * [`coo`] — triplet builder with the paper's §7.1 dataset cleaning
//!   (self-loop removal, duplicate removal, symmetrization).
//! * [`csr`] — compressed sparse row storage with parallel construction.
//! * [`storage`] — the multi-format layer: [`storage::RowAccess`] (the
//!   kernel-facing read surface), [`storage::BitmapStore`] and
//!   [`storage::Dcsr`] alternate backends, and the [`Storage`] enum with
//!   conversions. The execution planner in `graphblas_core::plan` picks a
//!   [`StorageFormat`] per operation the way it picks a direction.
//! * [`graph`] — the dual-orientation [`Graph`] handle with a lazy
//!   per-orientation format cache ([`Graph::store`]).
//! * [`shard`] — the 2D cache-blocked tile partition ([`shard::ShardPlan`])
//!   the sharded kernels stripe their SPAs and traversals by; planned
//!   O(n_rows) from CSR row endpoints and cached per orientation.
//! * [`mmio`] — Matrix Market I/O so real datasets can be dropped in.
//! * [`stats`] — the Table 3 columns: |V|, |E|, max degree, pseudo-diameter.

#![warn(missing_docs)]
// Robustness line-holder: user input reaches this crate (Matrix Market
// loaders, raw-part constructors), so non-test code must surface failures
// as typed errors, never unwrap/expect panics.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod coo;
pub mod csr;
pub mod graph;
pub mod mmio;
pub mod shard;
pub mod stats;
pub mod storage;

pub use coo::Coo;
pub use csr::Csr;
pub use graph::{Graph, StoreRef};
pub use shard::{ShardGrid, ShardPlan, DEFAULT_SHARD_BUDGET, MAX_STRIPES};
pub use stats::GraphStats;
pub use storage::{BitmapPlan, BitmapStore, Dcsr, RowAccess, Storage, StorageFormat, TILE_ROWS};

/// Vertex index type. `u32` bounds graphs at ~4.29 B vertices, which covers
/// every dataset in the paper (largest: road_usa, 23.9 M vertices) while
/// halving index bandwidth versus `usize` — the same choice GPU frameworks
/// make.
pub type VertexId = u32;
