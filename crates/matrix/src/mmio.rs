//! Matrix Market (`.mtx`) coordinate-format I/O.
//!
//! The paper's real-world datasets (soc-orkut, soc-LiveJournal1, …) ship as
//! Matrix Market files from the UF Sparse Matrix Collection / Network
//! Repository. Our experiments default to synthetic stand-ins, but every
//! harness binary accepts an `.mtx` path so the originals can be dropped in
//! unchanged when available.
//!
//! Supported: `matrix coordinate {real|integer|pattern} {general|symmetric}`.
//! [`read_coo`] reads pattern entries as value `1.0` for weighted callers;
//! [`read_coo_pattern`] loads any supported file structure-only as
//! `Coo<bool>` with no fabricated weights. Symmetric files are expanded to
//! both triangles on read. [`read_csr`] / [`read_csr_pattern`] go straight
//! to a CSR through the *checked* [`Csr::try_from_coo`], so duplicate
//! entries in a file are refused even in release builds.

use crate::{Coo, Csr, VertexId};
use std::fmt;
use std::io::{BufRead, Write};

/// Errors from Matrix Market parsing.
#[derive(Debug)]
pub enum MmError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structurally invalid file, with a human-readable reason.
    Parse(String),
}

impl fmt::Display for MmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MmError::Io(e) => write!(f, "I/O error: {e}"),
            MmError::Parse(msg) => write!(f, "Matrix Market parse error: {msg}"),
        }
    }
}

impl std::error::Error for MmError {}

impl From<std::io::Error> for MmError {
    fn from(e: std::io::Error) -> Self {
        MmError::Io(e)
    }
}

fn parse_err(msg: impl Into<String>) -> MmError {
    MmError::Parse(msg.into())
}

/// How a parsed entry line's value tokens map into the element type: a
/// pattern line has no value token, a real/integer line has one.
enum ValueTokens<'a> {
    Pattern,
    One(&'a str),
}

/// Read a coordinate-format Matrix Market stream into a [`Coo<f64>`].
/// Pattern entries read as `1.0` (kept for callers that feed weighted
/// kernels); use [`read_coo_pattern`] to load a pattern file without
/// fabricating weights.
pub fn read_coo<R: BufRead>(reader: R) -> Result<Coo<f64>, MmError> {
    read_coo_with(reader, |tokens| match tokens {
        ValueTokens::Pattern => Ok(1.0),
        ValueTokens::One(tok) => tok
            .parse()
            .map_err(|e| parse_err(format!("bad value: {e}"))),
    })
}

/// Read any supported coordinate file as a *structure-only* [`Coo<bool>`]:
/// pattern files load without fabricated weights, and real/integer files
/// load with their values discarded (every stored entry becomes `true`).
pub fn read_coo_pattern<R: BufRead>(reader: R) -> Result<Coo<bool>, MmError> {
    read_coo_with(reader, |_| Ok(true))
}

/// Generic coordinate reader: header/size/symmetry handling shared, the
/// element type decided by `value` (which sees the line's value tokens —
/// [`ValueTokens::Pattern`] when the file is `pattern`).
fn read_coo_with<R: BufRead, V: Copy, F>(reader: R, value: F) -> Result<Coo<V>, MmError>
where
    F: Fn(ValueTokens<'_>) -> Result<V, MmError>,
{
    let mut lines = reader.lines();
    let header = lines.next().ok_or_else(|| parse_err("empty file"))??;
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() < 5 || !fields[0].eq_ignore_ascii_case("%%MatrixMarket") {
        return Err(parse_err("missing %%MatrixMarket header"));
    }
    if !fields[1].eq_ignore_ascii_case("matrix") || !fields[2].eq_ignore_ascii_case("coordinate") {
        return Err(parse_err("only `matrix coordinate` is supported"));
    }
    let field_ty = fields[3].to_ascii_lowercase();
    let pattern = match field_ty.as_str() {
        "real" | "integer" => false,
        "pattern" => true,
        other => return Err(parse_err(format!("unsupported field type `{other}`"))),
    };
    let symmetry = fields[4].to_ascii_lowercase();
    let symmetric = match symmetry.as_str() {
        "general" => false,
        "symmetric" => true,
        other => return Err(parse_err(format!("unsupported symmetry `{other}`"))),
    };

    // Skip comments, find the size line.
    let size_line = loop {
        let line = lines
            .next()
            .ok_or_else(|| parse_err("missing size line"))??;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        break line;
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse::<usize>())
        .collect::<Result<_, _>>()
        .map_err(|e| parse_err(format!("bad size line: {e}")))?;
    if dims.len() != 3 {
        return Err(parse_err("size line must be `rows cols nnz`"));
    }
    let (n_rows, n_cols, nnz) = (dims[0], dims[1], dims[2]);

    let mut coo = Coo::new(n_rows, n_cols);
    coo.reserve(if symmetric { nnz * 2 } else { nnz });
    let mut read = 0usize;
    for line in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let r: usize = it
            .next()
            .ok_or_else(|| parse_err("missing row index"))?
            .parse()
            .map_err(|e| parse_err(format!("bad row index: {e}")))?;
        let c: usize = it
            .next()
            .ok_or_else(|| parse_err("missing col index"))?
            .parse()
            .map_err(|e| parse_err(format!("bad col index: {e}")))?;
        let v: V = if pattern {
            value(ValueTokens::Pattern)?
        } else {
            value(ValueTokens::One(
                it.next().ok_or_else(|| parse_err("missing value"))?,
            ))?
        };
        if r == 0 || c == 0 || r > n_rows || c > n_cols {
            return Err(parse_err(format!("entry ({r},{c}) out of 1-based bounds")));
        }
        let (r0, c0) = ((r - 1) as VertexId, (c - 1) as VertexId);
        coo.push(r0, c0, v);
        if symmetric && r0 != c0 {
            coo.push(c0, r0, v);
        }
        read += 1;
    }
    if read != nnz {
        return Err(parse_err(format!("expected {nnz} entries, found {read}")));
    }
    Ok(coo)
}

/// Read a Matrix Market file from disk.
pub fn read_coo_file(path: &std::path::Path) -> Result<Coo<f64>, MmError> {
    let file = std::fs::File::open(path)?;
    read_coo(std::io::BufReader::new(file))
}

/// Read a pattern-structure Matrix Market file from disk (see
/// [`read_coo_pattern`]).
pub fn read_coo_pattern_file(path: &std::path::Path) -> Result<Coo<bool>, MmError> {
    let file = std::fs::File::open(path)?;
    read_coo_pattern(std::io::BufReader::new(file))
}

/// Read a coordinate stream straight into a checked CSR: parsing via
/// [`read_coo`], duplicate collapse *verified* (not debug-asserted) via
/// [`Csr::try_from_coo`], so a malformed file — duplicate entries, a
/// symmetric file listing both triangles — surfaces as an [`MmError`]
/// instead of a silently corrupt CSR in release builds.
pub fn read_csr<R: BufRead>(reader: R) -> Result<Csr<f64>, MmError> {
    Csr::try_from_coo(&read_coo(reader)?)
}

/// Structure-only variant of [`read_csr`] (see [`read_coo_pattern`]).
pub fn read_csr_pattern<R: BufRead>(reader: R) -> Result<Csr<bool>, MmError> {
    Csr::try_from_coo(&read_coo_pattern(reader)?)
}

/// Write a COO as `matrix coordinate real general`.
pub fn write_coo<W: Write>(mut writer: W, coo: &Coo<f64>) -> Result<(), MmError> {
    writeln!(writer, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(writer, "{} {} {}", coo.n_rows(), coo.n_cols(), coo.nnz())?;
    for &(r, c, v) in coo.entries() {
        writeln!(writer, "{} {} {}", r + 1, c + 1, v)?;
    }
    Ok(())
}

/// Write a structure-only COO as `matrix coordinate pattern general` —
/// entry lines carry indices only, no fabricated weights.
pub fn write_coo_pattern<W: Write, V: Copy>(mut writer: W, coo: &Coo<V>) -> Result<(), MmError> {
    writeln!(writer, "%%MatrixMarket matrix coordinate pattern general")?;
    writeln!(writer, "{} {} {}", coo.n_rows(), coo.n_cols(), coo.nnz())?;
    for &(r, c, _) in coo.entries() {
        writeln!(writer, "{} {}", r + 1, c + 1)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn read_general_real() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\
                    3 3 2\n\
                    1 2 5.0\n\
                    3 1 -1.5\n";
        let coo = read_coo(Cursor::new(text)).expect("parses");
        assert_eq!(coo.n_rows(), 3);
        assert_eq!(coo.nnz(), 2);
        assert!(coo.entries().contains(&(0, 1, 5.0)));
        assert!(coo.entries().contains(&(2, 0, -1.5)));
    }

    #[test]
    fn read_pattern_symmetric_expands() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                    3 3 2\n\
                    2 1\n\
                    3 3\n";
        let coo = read_coo(Cursor::new(text)).expect("parses");
        // (2,1) expands to (1,0) and (0,1); diagonal (3,3) stays single.
        assert_eq!(coo.nnz(), 3);
        assert!(coo.entries().contains(&(1, 0, 1.0)));
        assert!(coo.entries().contains(&(0, 1, 1.0)));
        assert!(coo.entries().contains(&(2, 2, 1.0)));
    }

    #[test]
    fn roundtrip_write_read() {
        let mut coo = Coo::new(4, 4);
        coo.push(0, 3, 2.5);
        coo.push(2, 1, -7.0);
        let mut buf = Vec::new();
        write_coo(&mut buf, &coo).expect("writes");
        let back = read_coo(Cursor::new(buf)).expect("reads");
        assert_eq!(back.n_rows(), 4);
        assert_eq!(back.entries(), coo.entries());
    }

    #[test]
    fn pattern_reader_skips_fake_weights() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    3 3 2\n\
                    1 2\n\
                    3 1\n";
        let coo = read_coo_pattern(Cursor::new(text)).expect("parses");
        assert_eq!(coo.nnz(), 2);
        assert!(coo.entries().contains(&(0, 1, true)));
        // The same reader accepts weighted files structure-only.
        let weighted = "%%MatrixMarket matrix coordinate real general\n1 2 1\n1 2 -3.5\n";
        let coo = read_coo_pattern(Cursor::new(weighted)).expect("parses");
        assert_eq!(coo.entries(), &[(0, 1, true)]);
    }

    #[test]
    fn pattern_roundtrip_write_read() {
        let mut coo = Coo::new(4, 5);
        coo.push(0, 3, true);
        coo.push(2, 1, true);
        coo.push(3, 4, true);
        let mut buf = Vec::new();
        write_coo_pattern(&mut buf, &coo).expect("writes");
        let text = String::from_utf8(buf.clone()).expect("utf8");
        assert!(text.starts_with("%%MatrixMarket matrix coordinate pattern general"));
        assert!(!text.contains("1.0"), "no fabricated weights on disk");
        let back = read_coo_pattern(Cursor::new(buf)).expect("reads");
        assert_eq!(back.n_rows(), 4);
        assert_eq!(back.n_cols(), 5);
        assert_eq!(back.entries(), coo.entries());
    }

    #[test]
    fn read_csr_verifies_duplicates_in_release() {
        let clean = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 2 1.0\n2 1 2.0\n";
        let m = read_csr(Cursor::new(clean)).expect("clean file loads");
        assert_eq!(m.nnz(), 2);
        // A file listing the same entry twice must be refused, not built.
        let dup = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 2 1.0\n1 2 2.0\n";
        let err = read_csr(Cursor::new(dup)).expect_err("duplicates refused");
        assert!(err.to_string().contains("duplicate entry"));
        // Same check on the pattern route.
        let dup_p = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n1 2\n";
        assert!(read_csr_pattern(Cursor::new(dup_p)).is_err());
    }

    #[test]
    fn rejects_bad_header() {
        let r = read_coo(Cursor::new("%%NotMatrixMarket x\n1 1 0\n"));
        assert!(matches!(r, Err(MmError::Parse(_))));
    }

    #[test]
    fn rejects_wrong_count() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n";
        assert!(matches!(
            read_coo(Cursor::new(text)),
            Err(MmError::Parse(_))
        ));
    }

    #[test]
    fn rejects_out_of_bounds_entry() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(matches!(
            read_coo(Cursor::new(text)),
            Err(MmError::Parse(_))
        ));
    }

    #[test]
    fn rejects_unsupported_field() {
        let text = "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n";
        assert!(matches!(
            read_coo(Cursor::new(text)),
            Err(MmError::Parse(_))
        ));
    }
}
