//! Compressed sparse row storage.
//!
//! CSR of `A` is simultaneously CSC of `Aᵀ`: row `i` of the structure holds
//! the out-neighbors of vertex `i` when it stores `A`, and the in-neighbors
//! when it stores `Aᵀ`. The matvec kernels in `graphblas_core` are generic
//! over the [`crate::storage::RowAccess`] surface, so they run on a `Csr`,
//! a [`crate::storage::BitmapStore`], or a hypersparse
//! [`crate::storage::Dcsr`] interchangeably — `Csr` is the baseline format
//! every graph is born in and the oracle the other formats are tested
//! against; a flag at the dispatch layer says which orientation (`A` or
//! `Aᵀ`) a given store represents.
//!
//! Column indices within each row are kept sorted — the paper's sparse
//! vectors and matrix slices are "sorted lists of indices and values" (§3),
//! which the multiway-merge analysis relies on.

use crate::mmio::MmError;
use crate::{Coo, VertexId};
use graphblas_primitives::scan;
use rayon::prelude::*;

/// Sparse matrix in CSR form with values of type `V`.
#[derive(Clone, Debug, PartialEq)]
pub struct Csr<V> {
    n_rows: usize,
    n_cols: usize,
    row_ptr: Vec<usize>,
    col_ind: Vec<VertexId>,
    values: Vec<V>,
}

impl<V: Copy + Send + Sync> Csr<V> {
    /// Build from a COO. Duplicates must already be collapsed (use
    /// [`Coo::dedup`] or [`Coo::clean_undirected`]); this is debug-asserted.
    /// Loaders handling untrusted input should use [`Csr::try_from_coo`],
    /// which performs the duplicate check in release builds too.
    #[must_use]
    pub fn from_coo(coo: &Coo<V>) -> Self {
        let me = Self::build_from_coo(coo);
        debug_assert!(me.rows_strictly_sorted(), "duplicate entries in COO");
        me
    }

    /// Checked [`Csr::from_coo`]: refuses a COO whose duplicates were not
    /// collapsed instead of debug-asserting, so release-mode loaders (the
    /// `mmio` path) cannot silently build a CSR whose rows carry repeated
    /// columns — a structure the kernels' sorted-row invariants assume
    /// away.
    pub fn try_from_coo(coo: &Coo<V>) -> Result<Self, MmError> {
        let me = Self::build_from_coo(coo);
        for i in 0..me.n_rows {
            if let Some(w) = me.row(i).windows(2).find(|w| w[0] >= w[1]) {
                return Err(MmError::Parse(format!(
                    "duplicate entry at ({i}, {}): collapse duplicates before building a CSR",
                    w[0]
                )));
            }
        }
        Ok(me)
    }

    fn build_from_coo(coo: &Coo<V>) -> Self {
        let n_rows = coo.n_rows();
        let mut lengths = vec![0usize; n_rows];
        for &(r, _, _) in coo.entries() {
            lengths[r as usize] += 1;
        }
        let row_ptr = scan::exclusive_scan_offsets(&lengths);
        // `exclusive_scan_offsets` always returns `lengths.len() + 1` ≥ 1
        // offsets; an empty result would mean zero entries.
        let nnz = row_ptr.last().copied().unwrap_or(0);
        let mut col_ind = vec![0 as VertexId; nnz];
        let mut values: Vec<V> = Vec::with_capacity(nnz);
        // SAFETY: every slot is written exactly once below.
        #[allow(clippy::uninit_vec)]
        unsafe {
            values.set_len(nnz)
        };
        let mut cursor = row_ptr[..n_rows].to_vec();
        for &(r, c, v) in coo.entries() {
            let slot = cursor[r as usize];
            cursor[r as usize] += 1;
            col_ind[slot] = c;
            values[slot] = v;
        }
        // Sort each row by column index (entries may arrive unsorted).
        let mut me = Self {
            n_rows,
            n_cols: coo.n_cols(),
            row_ptr,
            col_ind,
            values,
        };
        me.sort_rows();
        me
    }

    /// Build directly from raw parts (used by generators that construct
    /// CSR without materializing a COO). Rows are sorted on entry.
    #[must_use]
    pub fn from_parts(
        n_rows: usize,
        n_cols: usize,
        row_ptr: Vec<usize>,
        col_ind: Vec<VertexId>,
        values: Vec<V>,
    ) -> Self {
        assert_eq!(row_ptr.len(), n_rows + 1);
        assert_eq!(col_ind.len(), row_ptr.last().copied().unwrap_or(0));
        assert_eq!(col_ind.len(), values.len());
        let mut me = Self {
            n_rows,
            n_cols,
            row_ptr,
            col_ind,
            values,
        };
        me.sort_rows();
        me
    }

    fn sort_rows(&mut self) {
        let row_ptr = &self.row_ptr;
        let n = self.n_rows;
        // Split (col_ind, values) into per-row slices for parallel sorting.
        let col_ptr = SendPtr(self.col_ind.as_mut_ptr());
        let val_ptr = SendPtr(self.values.as_mut_ptr());
        (0..n).into_par_iter().with_min_len(256).for_each(|i| {
            let (start, end) = (row_ptr[i], row_ptr[i + 1]);
            if end - start < 2 {
                return;
            }
            // SAFETY: row windows are disjoint.
            let cols =
                unsafe { std::slice::from_raw_parts_mut(col_ptr.get().add(start), end - start) };
            let vals =
                unsafe { std::slice::from_raw_parts_mut(val_ptr.get().add(start), end - start) };
            if cols.windows(2).all(|w| w[0] < w[1]) {
                return;
            }
            let mut perm: Vec<u32> = (0..cols.len() as u32).collect();
            perm.sort_unstable_by_key(|&k| cols[k as usize]);
            let old_cols = cols.to_vec();
            let old_vals = vals.to_vec();
            for (slot, &k) in perm.iter().enumerate() {
                cols[slot] = old_cols[k as usize];
                vals[slot] = old_vals[k as usize];
            }
        });
    }

    fn rows_strictly_sorted(&self) -> bool {
        (0..self.n_rows).all(|i| self.row(i).windows(2).all(|w| w[0] < w[1]))
    }

    /// Number of rows.
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[must_use]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored entries.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.col_ind.len()
    }

    /// Average entries per row — the `d` of the Table 1 cost model.
    #[must_use]
    pub fn avg_degree(&self) -> f64 {
        if self.n_rows == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.n_rows as f64
        }
    }

    /// Row pointers (length `n_rows + 1`).
    #[must_use]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// All column indices, row-major.
    #[must_use]
    pub fn col_ind(&self) -> &[VertexId] {
        &self.col_ind
    }

    /// All values, row-major.
    #[must_use]
    pub fn values(&self) -> &[V] {
        &self.values
    }

    /// Column indices of row `i`.
    #[inline]
    #[must_use]
    pub fn row(&self, i: usize) -> &[VertexId] {
        &self.col_ind[self.row_ptr[i]..self.row_ptr[i + 1]]
    }

    /// Values of row `i`.
    #[inline]
    #[must_use]
    pub fn row_values(&self, i: usize) -> &[V] {
        &self.values[self.row_ptr[i]..self.row_ptr[i + 1]]
    }

    /// Out-degree of row `i`.
    #[inline]
    #[must_use]
    pub fn degree(&self, i: usize) -> usize {
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// Number of rows with at least one stored entry — the occupancy the
    /// execution planner's hypersparse rule keys on. O(n) scan of
    /// `row_ptr`; [`crate::Graph`] caches the result per orientation.
    #[must_use]
    pub fn count_nonempty_rows(&self) -> usize {
        self.row_ptr.windows(2).filter(|w| w[0] < w[1]).count()
    }

    /// Explicit transpose. `Aᵀ` in CSR form (= CSC of `A`). Parallel
    /// histogram + scatter; within-row column order comes out sorted because
    /// rows are visited in order per column bucket.
    #[must_use]
    pub fn transpose(&self) -> Self {
        let mut lengths = vec![0usize; self.n_cols];
        for &c in &self.col_ind {
            lengths[c as usize] += 1;
        }
        let row_ptr = scan::exclusive_scan_offsets(&lengths);
        let nnz = self.nnz();
        let mut col_ind = vec![0 as VertexId; nnz];
        let mut values: Vec<V> = Vec::with_capacity(nnz);
        #[allow(clippy::uninit_vec)]
        // SAFETY: every slot is written exactly once below.
        unsafe {
            values.set_len(nnz)
        };
        let mut cursor = row_ptr[..self.n_cols].to_vec();
        for r in 0..self.n_rows {
            for (idx, &c) in self.row(r).iter().enumerate() {
                let slot = cursor[c as usize];
                cursor[c as usize] += 1;
                col_ind[slot] = r as VertexId;
                values[slot] = self.values[self.row_ptr[r] + idx];
            }
        }
        Self {
            n_rows: self.n_cols,
            n_cols: self.n_rows,
            row_ptr,
            col_ind,
            values,
        }
    }

    /// `true` when the sparsity pattern and values equal the transpose's.
    #[must_use]
    pub fn is_symmetric(&self) -> bool
    where
        V: PartialEq,
    {
        if self.n_rows != self.n_cols {
            return false;
        }
        let t = self.transpose();
        self.row_ptr == t.row_ptr && self.col_ind == t.col_ind && self.values == t.values
    }

    /// GrB_select-style structural filter: keep entry `(i, j, v)` iff
    /// `pred(i, j, v)` holds. The paper's generality examples build their
    /// masks this way — e.g. the strictly-lower triangle for triangle
    /// counting is `select(|i, j, _| j < i)`.
    #[must_use]
    pub fn select<F: Fn(usize, VertexId, V) -> bool>(&self, pred: F) -> Csr<V> {
        let mut row_ptr = Vec::with_capacity(self.n_rows + 1);
        let mut col_ind = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0usize);
        for i in 0..self.n_rows {
            for (idx, &j) in self.row(i).iter().enumerate() {
                let v = self.row_values(i)[idx];
                if pred(i, j, v) {
                    col_ind.push(j);
                    values.push(v);
                }
            }
            row_ptr.push(col_ind.len());
        }
        Csr {
            n_rows: self.n_rows,
            n_cols: self.n_cols,
            row_ptr,
            col_ind,
            values,
        }
    }

    /// Map values through `f`, preserving structure.
    #[must_use]
    pub fn map_values<W: Copy + Send + Sync, F: Fn(V) -> W>(&self, f: F) -> Csr<W> {
        Csr {
            n_rows: self.n_rows,
            n_cols: self.n_cols,
            row_ptr: self.row_ptr.clone(),
            col_ind: self.col_ind.clone(),
            values: self.values.iter().map(|&v| f(v)).collect(),
        }
    }
}

struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}
impl<T> SendPtr<T> {
    #[inline]
    fn get(&self) -> *mut T {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4-vertex digraph: 0->1, 0->2, 1->2, 2->3, 3->0.
    fn sample_csr() -> Csr<f32> {
        let mut coo = Coo::new(4, 4);
        for &(r, c) in &[(0u32, 1u32), (0, 2), (1, 2), (2, 3), (3, 0)] {
            coo.push(r, c, (r * 10 + c) as f32);
        }
        Csr::from_coo(&coo)
    }

    #[test]
    fn from_coo_layout() {
        let m = sample_csr();
        assert_eq!(m.n_rows(), 4);
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.row_ptr(), &[0, 2, 3, 4, 5]);
        assert_eq!(m.row(0), &[1, 2]);
        assert_eq!(m.row_values(0), &[1.0, 2.0]);
        assert_eq!(m.row(3), &[0]);
        assert_eq!(m.degree(0), 2);
        assert_eq!(m.degree(1), 1);
    }

    #[test]
    fn from_coo_sorts_rows() {
        let mut coo = Coo::new(2, 5);
        coo.push(0, 4, 4.0f32);
        coo.push(0, 1, 1.0);
        coo.push(0, 3, 3.0);
        let m = Csr::from_coo(&coo);
        assert_eq!(m.row(0), &[1, 3, 4]);
        assert_eq!(m.row_values(0), &[1.0, 3.0, 4.0]);
    }

    #[test]
    fn empty_rows_supported() {
        let coo: Coo<f32> = Coo::new(3, 3);
        let m = Csr::from_coo(&coo);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.row(1), &[] as &[u32]);
        assert_eq!(m.avg_degree(), 0.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample_csr();
        let t = m.transpose();
        assert_eq!(t.n_rows(), 4);
        // 0->1 in A means 1->0 in Aᵀ.
        assert_eq!(t.row(1), &[0]);
        assert_eq!(t.row(2), &[0, 1]);
        let tt = t.transpose();
        assert_eq!(tt, m);
    }

    #[test]
    fn transpose_preserves_values() {
        let m = sample_csr();
        let t = m.transpose();
        // Value of (0,2) in A is 2.0 and must appear at (2,0) in Aᵀ.
        let pos = t
            .row(2)
            .iter()
            .position(|&c| c == 0)
            .expect("entry present");
        assert_eq!(t.row_values(2)[pos], 2.0);
    }

    #[test]
    fn symmetry_detection() {
        let m = sample_csr();
        assert!(!m.is_symmetric());
        let mut coo = Coo::new(3, 3);
        coo.push(0, 1, 1.0f32);
        coo.push(1, 2, 1.0);
        coo.clean_undirected();
        let u = Csr::from_coo(&coo);
        assert!(u.is_symmetric());
    }

    #[test]
    fn map_values_preserves_structure() {
        let m = sample_csr();
        let b = m.map_values(|_| true);
        assert_eq!(b.row_ptr(), m.row_ptr());
        assert_eq!(b.col_ind(), m.col_ind());
        assert!(b.values().iter().all(|&v| v));
    }

    #[test]
    fn from_parts_sorts() {
        let m = Csr::from_parts(2, 4, vec![0, 3, 4], vec![2, 0, 1, 3], vec![20, 0, 10, 13]);
        assert_eq!(m.row(0), &[0, 1, 2]);
        assert_eq!(m.row_values(0), &[0, 10, 20]);
    }

    #[test]
    fn avg_degree_matches() {
        let m = sample_csr();
        assert!((m.avg_degree() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn select_lower_triangle() {
        let m = sample_csr();
        let lower = m.select(|i, j, _| (j as usize) < i);
        // Entries: (2,..)? rows: 0->{1,2} none kept; 1->{2} none; 2->{3}
        // none; 3->{0} kept.
        assert_eq!(lower.nnz(), 1);
        assert_eq!(lower.row(3), &[0]);
        assert_eq!(lower.n_rows(), m.n_rows());
    }

    #[test]
    fn select_by_value() {
        let m = sample_csr();
        let big = m.select(|_, _, v| v >= 10.0);
        assert!(big.values().iter().all(|&v| v >= 10.0));
        let total = m.nnz();
        let small = m.select(|_, _, v| v < 10.0);
        assert_eq!(big.nnz() + small.nnz(), total);
    }

    #[test]
    fn try_from_coo_accepts_clean_and_rejects_duplicates() {
        let mut clean = Coo::new(3, 3);
        clean.push(0, 1, 1.0f32);
        clean.push(0, 2, 2.0);
        let m = Csr::try_from_coo(&clean).expect("clean COO builds");
        assert_eq!(m, Csr::from_coo(&clean));

        let mut dup = Coo::new(3, 3);
        dup.push(0, 1, 1.0f32);
        dup.push(0, 1, 5.0);
        let err = Csr::try_from_coo(&dup).expect_err("duplicate must be refused");
        assert!(err.to_string().contains("duplicate entry at (0, 1)"));
        // After collapsing, the same COO builds fine.
        dup.dedup(|a, _| a);
        assert!(Csr::try_from_coo(&dup).is_ok());
    }

    #[test]
    fn count_nonempty_rows_ignores_gaps() {
        let m = sample_csr();
        assert_eq!(m.count_nonempty_rows(), 4);
        let mut coo = Coo::new(5, 5);
        coo.push(1, 2, 1.0f32);
        coo.push(4, 0, 1.0);
        assert_eq!(Csr::from_coo(&coo).count_nonempty_rows(), 2);
        assert_eq!(
            Csr::<f32>::from_coo(&Coo::new(3, 3)).count_nonempty_rows(),
            0
        );
    }

    #[test]
    fn select_everything_and_nothing() {
        let m = sample_csr();
        assert_eq!(m.select(|_, _, _| true), m);
        assert_eq!(m.select(|_, _, _| false).nnz(), 0);
    }
}
