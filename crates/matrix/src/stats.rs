//! Graph statistics — the columns of the paper's Table 3.
//!
//! Table 3 describes each dataset by vertices, edges, max degree, diameter,
//! and type. Diameter is estimated by the standard double-sweep heuristic
//! (BFS from an arbitrary vertex, then BFS from the farthest vertex found;
//! the second eccentricity lower-bounds the true diameter and is exact on
//! trees). The paper's values are estimates of the same kind.

use crate::{Csr, VertexId};
use std::collections::VecDeque;

/// Summary statistics for a graph stored as CSR of `A`.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of stored directed edges (nnz).
    pub edges: usize,
    /// Largest out-degree.
    pub max_degree: usize,
    /// Mean out-degree.
    pub avg_degree: f64,
    /// Double-sweep pseudo-diameter (lower bound on the true diameter).
    pub pseudo_diameter: usize,
    /// Size of the largest set of vertices reached by the sweeps' BFS (a
    /// lower bound on the largest connected component).
    pub reached: usize,
}

impl GraphStats {
    /// Compute statistics for `a` (assumed to be the full adjacency
    /// structure — symmetric for undirected graphs).
    #[must_use]
    pub fn compute<V: Copy + Send + Sync>(a: &Csr<V>) -> Self {
        let n = a.n_rows();
        let max_degree = (0..n).map(|i| a.degree(i)).max().unwrap_or(0);
        // First sweep from the max-degree vertex (most likely inside the
        // giant component of a scale-free graph).
        let start = (0..n)
            .max_by_key(|&i| a.degree(i))
            .map_or(0, |i| i as VertexId);
        let (far1, _depth1, reach1) = bfs_farthest(a, start);
        let (_far2, depth2, reach2) = bfs_farthest(a, far1);
        Self {
            vertices: n,
            edges: a.nnz(),
            max_degree,
            avg_degree: a.avg_degree(),
            pseudo_diameter: depth2,
            reached: reach1.max(reach2),
        }
    }
}

/// Log₂-bucketed out-degree histogram: `histogram[b]` counts vertices with
/// degree in `[2^b, 2^(b+1))`; bucket 0 additionally holds degree-0 and
/// degree-1 vertices. A scale-free graph shows a straight-line decay over
/// many buckets (the power law); a mesh collapses into 2–3 buckets — the
/// visual version of Table 3's type column.
#[must_use]
pub fn degree_histogram<V: Copy + Send + Sync>(a: &Csr<V>) -> Vec<usize> {
    let mut hist = Vec::new();
    for i in 0..a.n_rows() {
        let d = a.degree(i);
        let bucket = if d <= 1 {
            0
        } else {
            (usize::BITS - 1 - d.leading_zeros()) as usize
        };
        if bucket >= hist.len() {
            hist.resize(bucket + 1, 0);
        }
        hist[bucket] += 1;
    }
    hist
}

/// Serial BFS returning (farthest vertex, its depth, vertices reached).
fn bfs_farthest<V: Copy + Send + Sync>(a: &Csr<V>, source: VertexId) -> (VertexId, usize, usize) {
    let n = a.n_rows();
    if n == 0 {
        return (0, 0, 0);
    }
    let mut depth = vec![usize::MAX; n];
    let mut queue = VecDeque::new();
    depth[source as usize] = 0;
    queue.push_back(source);
    let mut far = source;
    let mut reached = 1usize;
    while let Some(u) = queue.pop_front() {
        let du = depth[u as usize];
        for &v in a.row(u as usize) {
            if depth[v as usize] == usize::MAX {
                depth[v as usize] = du + 1;
                reached += 1;
                if depth[v as usize] > depth[far as usize] {
                    far = v;
                }
                queue.push_back(v);
            }
        }
    }
    (far, depth[far as usize], reached)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    fn path_graph(n: usize) -> Csr<bool> {
        let mut coo = Coo::new(n, n);
        for i in 0..n - 1 {
            coo.push(i as u32, (i + 1) as u32, true);
        }
        coo.clean_undirected();
        Csr::from_coo(&coo)
    }

    #[test]
    fn path_diameter_is_exact() {
        let a = path_graph(10);
        let s = GraphStats::compute(&a);
        assert_eq!(s.vertices, 10);
        assert_eq!(s.edges, 18); // 9 undirected edges stored twice
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.pseudo_diameter, 9);
        assert_eq!(s.reached, 10);
    }

    #[test]
    fn star_graph_stats() {
        let n = 50;
        let mut coo = Coo::new(n, n);
        for i in 1..n {
            coo.push(0, i as u32, true);
        }
        coo.clean_undirected();
        let a = Csr::from_coo(&coo);
        let s = GraphStats::compute(&a);
        assert_eq!(s.max_degree, n - 1);
        assert_eq!(s.pseudo_diameter, 2);
    }

    #[test]
    fn disconnected_graph_reached_is_component_bound() {
        // Two components: a triangle and an isolated edge.
        let mut coo = Coo::new(5, 5);
        for &(r, c) in &[(0u32, 1u32), (1, 2), (2, 0), (3, 4)] {
            coo.push(r, c, true);
        }
        coo.clean_undirected();
        let a = Csr::from_coo(&coo);
        let s = GraphStats::compute(&a);
        assert_eq!(s.vertices, 5);
        assert!(s.reached <= 3);
        assert!(s.reached >= 2);
    }

    #[test]
    fn empty_graph() {
        let a: Csr<bool> = Csr::from_coo(&Coo::new(0, 0));
        let s = GraphStats::compute(&a);
        assert_eq!(s.vertices, 0);
        assert_eq!(s.max_degree, 0);
        assert_eq!(s.pseudo_diameter, 0);
        assert!(degree_histogram(&a).is_empty());
    }

    #[test]
    fn degree_histogram_buckets() {
        // Degrees: 0, 1, 2, 3, 4, 8 → buckets 0,0,1,1,2,3.
        let mut coo = Coo::new(6, 20);
        let degrees = [0usize, 1, 2, 3, 4, 8];
        for (i, &d) in degrees.iter().enumerate() {
            for j in 0..d {
                coo.push(i as u32, (6 + j) as u32, true);
            }
        }
        let a = Csr::from_coo(&coo);
        let h = degree_histogram(&a);
        assert_eq!(h, vec![2, 2, 1, 1]);
    }

    #[test]
    fn histogram_totals_match_vertex_count() {
        let a = path_graph(50);
        let h = degree_histogram(&a);
        assert_eq!(h.iter().sum::<usize>(), 50);
    }
}
