//! Dual-orientation graph handle.
//!
//! `Graph` owns CSR of `A` (rows = out-neighbors/children) and CSR of `Aᵀ`
//! (rows = in-neighbors/parents). The BFS recurrence `f' = Aᵀf .∗ ¬v`
//! operates on `Aᵀ`; its *column-based* kernel fetches columns of `Aᵀ`,
//! which are rows of `A`, while its *row-based* kernel walks rows of `Aᵀ`.
//! Keeping both orientations resident is what lets the backend switch
//! direction per iteration without any transposition cost (§4.4).
//!
//! For undirected (symmetric) graphs — all datasets in the paper's
//! evaluation — the two orientations are identical and the CSR is shared
//! via `Arc`, halving memory.
//!
//! Each orientation additionally carries a lazy cache of alternate storage
//! formats ([`crate::storage::BitmapStore`], [`crate::storage::Dcsr`]):
//! [`Graph::store`] serves any orientation in any format, converting on
//! first request and reusing the cached store afterwards, which is what
//! makes the execution planner's per-operation format switching cheap.

use crate::shard::ShardPlan;
use crate::storage::{BitmapPlan, BitmapStore, Dcsr, StorageFormat};
use crate::{Coo, Csr, VertexId};
use std::sync::{Arc, OnceLock};

/// Lazily-built alternate-format representations of one orientation, plus
/// the row-occupancy statistic the execution planner keys on. Shared via
/// `Arc` so clones of a [`Graph`] (and its symmetric orientation aliases)
/// convert at most once per format. The tiled-bitmap [`BitmapPlan`] is
/// memoized here too, so the feasibility verdict for one orientation is
/// computed once per graph — not re-derived (and re-charged) per call.
#[derive(Debug)]
struct FormatCache<V> {
    bitmap: OnceLock<Option<Arc<BitmapStore<V>>>>,
    bitmap_plan: OnceLock<BitmapPlan>,
    shard_plan: OnceLock<Arc<ShardPlan>>,
    dcsr: OnceLock<Arc<Dcsr<V>>>,
    nonempty_rows: OnceLock<usize>,
}

impl<V> Default for FormatCache<V> {
    fn default() -> Self {
        Self {
            bitmap: OnceLock::new(),
            bitmap_plan: OnceLock::new(),
            shard_plan: OnceLock::new(),
            dcsr: OnceLock::new(),
            nonempty_rows: OnceLock::new(),
        }
    }
}

/// A borrowed view of one orientation of a [`Graph`] in a concrete
/// storage format — what the `mxv`/`mxv_batch`/fused dispatchers match on
/// to monomorphize the generic kernels per backend.
#[derive(Debug)]
pub enum StoreRef<'a, V> {
    /// The baseline CSR (always resident).
    Csr(&'a Csr<V>),
    /// The cached bitmap store.
    Bitmap(&'a BitmapStore<V>),
    /// The cached hypersparse DCSR store.
    Dcsr(&'a Dcsr<V>),
}

/// A graph held as both `A` and `Aᵀ` in CSR form.
///
/// ```
/// use graphblas_matrix::{Coo, Graph};
///
/// // Directed triangle 0 → 1 → 2 → 0.
/// let mut coo = Coo::new(3, 3);
/// coo.push(0, 1, true);
/// coo.push(1, 2, true);
/// coo.push(2, 0, true);
/// let g = Graph::from_coo(&coo);
///
/// assert_eq!(g.n_vertices(), 3);
/// assert_eq!(g.children(0), &[1]); // row of A
/// assert_eq!(g.parents(0), &[2]);  // row of Aᵀ — no transpose computed
/// assert!(!g.is_symmetric());
///
/// // Symmetrized, the two orientations share one CSR allocation.
/// coo.clean_undirected();
/// let und = Graph::from_coo(&coo);
/// assert!(und.is_symmetric());
/// assert_eq!(und.children(1), und.parents(1));
/// ```
#[derive(Debug)]
pub struct Graph<V> {
    a: Arc<Csr<V>>,
    at: Arc<Csr<V>>,
    a_cache: Arc<FormatCache<V>>,
    at_cache: Arc<FormatCache<V>>,
}

impl<V> Clone for Graph<V> {
    fn clone(&self) -> Self {
        Self {
            a: Arc::clone(&self.a),
            at: Arc::clone(&self.at),
            a_cache: Arc::clone(&self.a_cache),
            at_cache: Arc::clone(&self.at_cache),
        }
    }
}

impl<V: Copy + Send + Sync + PartialEq> Graph<V> {
    /// Build from CSR of `A`, computing `Aᵀ` (or sharing, when symmetric).
    #[must_use]
    pub fn from_csr(a: Csr<V>) -> Self {
        let t = a.transpose();
        let a = Arc::new(a);
        let a_cache = Arc::new(FormatCache::default());
        let (at, at_cache) = if *a == t {
            (Arc::clone(&a), Arc::clone(&a_cache))
        } else {
            (Arc::new(t), Arc::new(FormatCache::default()))
        };
        Self {
            a,
            at,
            a_cache,
            at_cache,
        }
    }

    /// Build from a cleaned COO (see [`Coo::clean_undirected`]).
    #[must_use]
    pub fn from_coo(coo: &Coo<V>) -> Self {
        Self::from_csr(Csr::from_coo(coo))
    }

    /// Build from a CSR already known to be symmetric, sharing storage
    /// without verification cost.
    #[must_use]
    pub fn from_symmetric_csr(a: Csr<V>) -> Self {
        let a = Arc::new(a);
        let a_cache = Arc::new(FormatCache::default());
        Self {
            at: Arc::clone(&a),
            at_cache: Arc::clone(&a_cache),
            a,
            a_cache,
        }
    }

    /// CSR of `A`: row `u` lists children (out-neighbors) of `u`.
    #[inline]
    #[must_use]
    pub fn csr(&self) -> &Csr<V> {
        &self.a
    }

    /// CSR of `Aᵀ`: row `v` lists parents (in-neighbors) of `v`.
    #[inline]
    #[must_use]
    pub fn csr_t(&self) -> &Csr<V> {
        &self.at
    }

    /// Number of vertices.
    #[must_use]
    pub fn n_vertices(&self) -> usize {
        self.a.n_rows()
    }

    /// Number of stored directed edges (2× the undirected edge count).
    #[must_use]
    pub fn n_edges(&self) -> usize {
        self.a.nnz()
    }

    /// Average out-degree — `d` in the Table 1 cost model.
    #[must_use]
    pub fn avg_degree(&self) -> f64 {
        self.a.avg_degree()
    }

    /// Whether the two orientations share storage (symmetric graph).
    #[must_use]
    pub fn is_symmetric(&self) -> bool {
        Arc::ptr_eq(&self.a, &self.at)
    }

    /// Out-neighbors of `u`.
    #[inline]
    #[must_use]
    pub fn children(&self, u: VertexId) -> &[VertexId] {
        self.a.row(u as usize)
    }

    /// In-neighbors of `v`.
    #[inline]
    #[must_use]
    pub fn parents(&self, v: VertexId) -> &[VertexId] {
        self.at.row(v as usize)
    }

    fn side(&self, transposed: bool) -> (&Arc<Csr<V>>, &FormatCache<V>) {
        if transposed {
            (&self.at, &self.at_cache)
        } else {
            (&self.a, &self.a_cache)
        }
    }

    /// One orientation of the graph in the requested storage format:
    /// `transposed == false` is `A` (children / row-based over `A`),
    /// `transposed == true` is `Aᵀ`. Alternate formats are built lazily on
    /// first request and cached for the graph's lifetime, so an iterative
    /// algorithm pays each conversion at most once. A bitmap request whose
    /// tiling plan is infeasible ([`BitmapPlan::feasible`]) degrades to
    /// the resident CSR — the same rule [`Graph::effective_format`]
    /// reports, so the planner, the counters, and the executed kernel
    /// always agree on the format.
    #[must_use]
    pub fn store(&self, transposed: bool, format: StorageFormat) -> StoreRef<'_, V> {
        let (csr, cache) = self.side(transposed);
        match format {
            StorageFormat::Csr => StoreRef::Csr(csr),
            StorageFormat::Bitmap => {
                let plan = self.bitmap_plan(transposed);
                match cache
                    .bitmap
                    .get_or_init(|| BitmapStore::from_plan(Arc::clone(csr), plan).map(Arc::new))
                {
                    Some(b) => StoreRef::Bitmap(b),
                    None => StoreRef::Csr(csr),
                }
            }
            StorageFormat::Dcsr => {
                StoreRef::Dcsr(cache.dcsr.get_or_init(|| Arc::new(Dcsr::from_csr(csr))))
            }
        }
    }

    /// The cached tiled-bitmap allocation plan for one orientation — the
    /// feasibility verdict and byte cost the planner and the budget
    /// enforcement both consult (computed once per orientation, O(n_rows),
    /// without building the bitmap).
    #[must_use]
    pub fn bitmap_plan(&self, transposed: bool) -> &BitmapPlan {
        let (csr, cache) = self.side(transposed);
        cache.bitmap_plan.get_or_init(|| BitmapPlan::from_csr(csr))
    }

    /// The cached default-budget 2D shard partition for one orientation —
    /// stripe boundaries and per-stripe column spans the sharded kernels
    /// block their work by (computed once per orientation, O(n_rows) from
    /// the CSR row endpoints, like [`Graph::bitmap_plan`]). Explicitly
    /// requested grids (`ShardPolicy::Fixed`) build their own plan; only
    /// the auto-sized default is worth memoizing.
    #[must_use]
    pub fn shard_plan(&self, transposed: bool) -> &Arc<ShardPlan> {
        let (csr, cache) = self.side(transposed);
        cache
            .shard_plan
            .get_or_init(|| Arc::new(ShardPlan::from_csr(csr)))
    }

    /// The format [`Graph::store`] will actually serve for a request —
    /// identical to the request except that an infeasible bitmap degrades
    /// to [`StorageFormat::Csr`].
    #[must_use]
    pub fn effective_format(&self, transposed: bool, format: StorageFormat) -> StorageFormat {
        match format {
            StorageFormat::Bitmap if !self.bitmap_plan(transposed).feasible() => StorageFormat::Csr,
            other => other,
        }
    }

    /// Number of non-empty rows in one orientation (cached; the planner's
    /// hypersparse-occupancy statistic).
    #[must_use]
    pub fn nonempty_rows(&self, transposed: bool) -> usize {
        let (csr, cache) = self.side(transposed);
        *cache
            .nonempty_rows
            .get_or_init(|| csr.count_nonempty_rows())
    }

    /// Fraction of rows in one orientation that hold at least one entry.
    #[must_use]
    pub fn row_occupancy(&self, transposed: bool) -> f64 {
        let n = self.side(transposed).0.n_rows();
        if n == 0 {
            0.0
        } else {
            self.nonempty_rows(transposed) as f64 / n as f64
        }
    }
}

impl<V: Copy + Send + Sync + PartialEq> From<Csr<V>> for Graph<V> {
    fn from(a: Csr<V>) -> Self {
        Self::from_csr(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn directed_graph() -> Graph<bool> {
        // 0->1, 0->2, 1->2, 2->3, 3->0
        let mut coo = Coo::new(4, 4);
        for &(r, c) in &[(0u32, 1u32), (0, 2), (1, 2), (2, 3), (3, 0)] {
            coo.push(r, c, true);
        }
        Graph::from_coo(&coo)
    }

    #[test]
    fn children_and_parents() {
        let g = directed_graph();
        assert_eq!(g.children(0), &[1, 2]);
        assert_eq!(g.parents(2), &[0, 1]);
        assert_eq!(g.parents(0), &[3]);
        assert_eq!(g.n_vertices(), 4);
        assert_eq!(g.n_edges(), 5);
    }

    #[test]
    fn directed_graph_has_two_orientations() {
        let g = directed_graph();
        assert!(!g.is_symmetric());
    }

    #[test]
    fn undirected_graph_shares_storage() {
        let mut coo = Coo::new(3, 3);
        coo.push(0, 1, true);
        coo.push(1, 2, true);
        coo.clean_undirected();
        let g = Graph::from_coo(&coo);
        assert!(g.is_symmetric());
        assert_eq!(g.children(1), g.parents(1));
        assert_eq!(g.n_edges(), 4);
    }

    #[test]
    fn store_serves_and_caches_every_format() {
        let g = directed_graph();
        for transposed in [false, true] {
            let oracle = if transposed { g.csr_t() } else { g.csr() };
            for format in StorageFormat::all() {
                let store = g.store(transposed, format);
                let rows: Vec<Vec<u32>> = (0..4)
                    .map(|i| match &store {
                        StoreRef::Csr(m) => m.row(i).to_vec(),
                        StoreRef::Bitmap(m) => m.as_csr().row(i).to_vec(),
                        StoreRef::Dcsr(m) => {
                            use crate::storage::RowAccess;
                            RowAccess::<bool>::row(*m, i).to_vec()
                        }
                    })
                    .collect();
                let expect: Vec<Vec<u32>> = (0..4).map(|i| oracle.row(i).to_vec()).collect();
                assert_eq!(rows, expect, "{format} transposed={transposed}");
                assert_eq!(
                    g.effective_format(transposed, format),
                    format,
                    "4×4 all fit"
                );
            }
        }
        // Cached stores are shared across clones (conversion happens once).
        let c = g.clone();
        assert_eq!(
            dcsr_addr(g.store(false, StorageFormat::Dcsr)),
            dcsr_addr(c.store(false, StorageFormat::Dcsr)),
            "clone shares the format cache"
        );
    }

    /// Address of a served DCSR store (`None` when another format was
    /// served) — lets cache-sharing tests compare identity without a
    /// panicking match arm.
    fn dcsr_addr(s: StoreRef<'_, bool>) -> Option<*const Dcsr<bool>> {
        match s {
            StoreRef::Dcsr(x) => Some(std::ptr::from_ref(x)),
            StoreRef::Csr(_) | StoreRef::Bitmap(_) => None,
        }
    }

    #[test]
    fn occupancy_statistics_cached_per_orientation() {
        // 0->1 only: A has 1 non-empty row of 3; Aᵀ likewise.
        let mut coo = Coo::new(3, 3);
        coo.push(0, 1, true);
        let g = Graph::from_coo(&coo);
        assert_eq!(g.nonempty_rows(false), 1);
        assert_eq!(g.nonempty_rows(true), 1);
        assert!((g.row_occupancy(false) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn symmetric_graph_shares_format_cache() {
        let mut coo = Coo::new(3, 3);
        coo.push(0, 1, true);
        coo.clean_undirected();
        let g = Graph::from_coo(&coo);
        assert!(g.is_symmetric());
        let a = dcsr_addr(g.store(false, StorageFormat::Dcsr));
        let b = dcsr_addr(g.store(true, StorageFormat::Dcsr));
        assert!(a.is_some(), "Dcsr request serves a Dcsr store");
        assert_eq!(a, b, "one conversion serves both orientations");
    }

    #[test]
    fn from_symmetric_csr_skips_transpose() {
        let mut coo = Coo::new(3, 3);
        coo.push(0, 2, 1.0f32);
        coo.push(1, 2, 1.0);
        coo.clean_undirected();
        let csr = Csr::from_coo(&coo);
        let g = Graph::from_symmetric_csr(csr);
        assert!(g.is_symmetric());
        assert_eq!(g.parents(2), &[0, 1]);
    }
}
