//! Dual-orientation graph handle.
//!
//! `Graph` owns CSR of `A` (rows = out-neighbors/children) and CSR of `Aᵀ`
//! (rows = in-neighbors/parents). The BFS recurrence `f' = Aᵀf .∗ ¬v`
//! operates on `Aᵀ`; its *column-based* kernel fetches columns of `Aᵀ`,
//! which are rows of `A`, while its *row-based* kernel walks rows of `Aᵀ`.
//! Keeping both orientations resident is what lets the backend switch
//! direction per iteration without any transposition cost (§4.4).
//!
//! For undirected (symmetric) graphs — all datasets in the paper's
//! evaluation — the two orientations are identical and the CSR is shared
//! via `Arc`, halving memory.

use crate::{Coo, Csr, VertexId};
use std::sync::Arc;

/// A graph held as both `A` and `Aᵀ` in CSR form.
///
/// ```
/// use graphblas_matrix::{Coo, Graph};
///
/// // Directed triangle 0 → 1 → 2 → 0.
/// let mut coo = Coo::new(3, 3);
/// coo.push(0, 1, true);
/// coo.push(1, 2, true);
/// coo.push(2, 0, true);
/// let g = Graph::from_coo(&coo);
///
/// assert_eq!(g.n_vertices(), 3);
/// assert_eq!(g.children(0), &[1]); // row of A
/// assert_eq!(g.parents(0), &[2]);  // row of Aᵀ — no transpose computed
/// assert!(!g.is_symmetric());
///
/// // Symmetrized, the two orientations share one CSR allocation.
/// coo.clean_undirected();
/// let und = Graph::from_coo(&coo);
/// assert!(und.is_symmetric());
/// assert_eq!(und.children(1), und.parents(1));
/// ```
#[derive(Clone, Debug)]
pub struct Graph<V> {
    a: Arc<Csr<V>>,
    at: Arc<Csr<V>>,
}

impl<V: Copy + Send + Sync + PartialEq> Graph<V> {
    /// Build from CSR of `A`, computing `Aᵀ` (or sharing, when symmetric).
    #[must_use]
    pub fn from_csr(a: Csr<V>) -> Self {
        let t = a.transpose();
        let a = Arc::new(a);
        let at = if *a == t { Arc::clone(&a) } else { Arc::new(t) };
        Self { a, at }
    }

    /// Build from a cleaned COO (see [`Coo::clean_undirected`]).
    #[must_use]
    pub fn from_coo(coo: &Coo<V>) -> Self {
        Self::from_csr(Csr::from_coo(coo))
    }

    /// Build from a CSR already known to be symmetric, sharing storage
    /// without verification cost.
    #[must_use]
    pub fn from_symmetric_csr(a: Csr<V>) -> Self {
        let a = Arc::new(a);
        Self {
            at: Arc::clone(&a),
            a,
        }
    }

    /// CSR of `A`: row `u` lists children (out-neighbors) of `u`.
    #[inline]
    #[must_use]
    pub fn csr(&self) -> &Csr<V> {
        &self.a
    }

    /// CSR of `Aᵀ`: row `v` lists parents (in-neighbors) of `v`.
    #[inline]
    #[must_use]
    pub fn csr_t(&self) -> &Csr<V> {
        &self.at
    }

    /// Number of vertices.
    #[must_use]
    pub fn n_vertices(&self) -> usize {
        self.a.n_rows()
    }

    /// Number of stored directed edges (2× the undirected edge count).
    #[must_use]
    pub fn n_edges(&self) -> usize {
        self.a.nnz()
    }

    /// Average out-degree — `d` in the Table 1 cost model.
    #[must_use]
    pub fn avg_degree(&self) -> f64 {
        self.a.avg_degree()
    }

    /// Whether the two orientations share storage (symmetric graph).
    #[must_use]
    pub fn is_symmetric(&self) -> bool {
        Arc::ptr_eq(&self.a, &self.at)
    }

    /// Out-neighbors of `u`.
    #[inline]
    #[must_use]
    pub fn children(&self, u: VertexId) -> &[VertexId] {
        self.a.row(u as usize)
    }

    /// In-neighbors of `v`.
    #[inline]
    #[must_use]
    pub fn parents(&self, v: VertexId) -> &[VertexId] {
        self.at.row(v as usize)
    }
}

impl<V: Copy + Send + Sync + PartialEq> From<Csr<V>> for Graph<V> {
    fn from(a: Csr<V>) -> Self {
        Self::from_csr(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn directed_graph() -> Graph<bool> {
        // 0->1, 0->2, 1->2, 2->3, 3->0
        let mut coo = Coo::new(4, 4);
        for &(r, c) in &[(0u32, 1u32), (0, 2), (1, 2), (2, 3), (3, 0)] {
            coo.push(r, c, true);
        }
        Graph::from_coo(&coo)
    }

    #[test]
    fn children_and_parents() {
        let g = directed_graph();
        assert_eq!(g.children(0), &[1, 2]);
        assert_eq!(g.parents(2), &[0, 1]);
        assert_eq!(g.parents(0), &[3]);
        assert_eq!(g.n_vertices(), 4);
        assert_eq!(g.n_edges(), 5);
    }

    #[test]
    fn directed_graph_has_two_orientations() {
        let g = directed_graph();
        assert!(!g.is_symmetric());
    }

    #[test]
    fn undirected_graph_shares_storage() {
        let mut coo = Coo::new(3, 3);
        coo.push(0, 1, true);
        coo.push(1, 2, true);
        coo.clean_undirected();
        let g = Graph::from_coo(&coo);
        assert!(g.is_symmetric());
        assert_eq!(g.children(1), g.parents(1));
        assert_eq!(g.n_edges(), 4);
    }

    #[test]
    fn from_symmetric_csr_skips_transpose() {
        let mut coo = Coo::new(3, 3);
        coo.push(0, 2, 1.0f32);
        coo.push(1, 2, 1.0);
        coo.clean_undirected();
        let csr = Csr::from_coo(&coo);
        let g = Graph::from_symmetric_csr(csr);
        assert!(g.is_symmetric());
        assert_eq!(g.parents(2), &[0, 1]);
    }
}
