//! Multi-format sparse matrix storage: CSR, bitmap, and hypersparse DCSR
//! behind one row-access abstraction.
//!
//! The paper's push/pull switch is a *data-structure* decision on the
//! vector side (sparse list ↔ dense array, §6.3); SuiteSparse:GraphBLAS
//! and GraphBLAST extend the same decision to the *matrix* side by keeping
//! several storage formats and picking per operation. This module supplies
//! the three formats the execution planner in `graphblas_core::plan`
//! chooses between:
//!
//! * [`Csr`] — the baseline: dense `row_ptr` over all rows. O(1) row
//!   lookup, `O(n)` pointer memory, every full-matrix scan walks all `n`
//!   rows even when almost all are empty.
//! * [`BitmapStore`] — CSR payload plus a **tiled** row×col membership
//!   bitmap: rows are partitioned into [`TILE_ROWS`]-row tiles and each
//!   occupied tile allocates only the column word window its edges span,
//!   so memory scales with occupancy ([`BitmapPlan`]) instead of the dense
//!   `n_rows·n_cols` grid. O(1) `has(i, j)` edge probes for dense phases;
//!   feasibility is the *allocated* bit count against
//!   [`BitmapStore::MAX_BITS`], not a global shape cliff.
//! * [`Dcsr`] — hypersparse doubly-compressed CSR: only non-empty rows
//!   carry pointers, so full scans touch `O(nnz_rows)` rows, not `O(n)` —
//!   the k-source batched-frontier regime where most of a scale-free
//!   graph's embedding is empty rows.
//!
//! Every format implements [`RowAccess`], the exact surface the matvec /
//! mxm kernels in `graphblas_core` consume (`row`, `row_values`, `degree`,
//! dims). The kernels are generic over it, so **results and access
//! counters are bit-identical across formats by construction** — formats
//! change memory layout and wall clock, never the computation. The one
//! format-aware hook is [`RowAccess::nonempty_rows`]: a store that tracks
//! its non-empty rows lets the unmasked pull kernel skip empty rows while
//! charging the identical counter totals in bulk.

use crate::{Coo, Csr, VertexId};

/// The storage backends the execution planner selects between.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum StorageFormat {
    /// Compressed sparse row — the baseline every graph is born in.
    #[default]
    Csr,
    /// CSR payload + dense membership bitmap ([`BitmapStore`]).
    Bitmap,
    /// Doubly-compressed (hypersparse) CSR ([`Dcsr`]).
    Dcsr,
}

impl StorageFormat {
    /// Stable lowercase name for reports and JSON artifacts.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            StorageFormat::Csr => "csr",
            StorageFormat::Bitmap => "bitmap",
            StorageFormat::Dcsr => "dcsr",
        }
    }

    /// All formats, in planner preference order for reports.
    #[must_use]
    pub fn all() -> [StorageFormat; 3] {
        [
            StorageFormat::Csr,
            StorageFormat::Bitmap,
            StorageFormat::Dcsr,
        ]
    }
}

impl std::fmt::Display for StorageFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The read surface the matvec/mxm kernels consume, implemented by every
/// storage backend. Kernels in `graphblas_core` are generic over this
/// trait, which is what makes results and counters format-independent:
/// the same kernel code runs over every backend.
pub trait RowAccess<V>: Sync {
    /// Number of rows.
    fn n_rows(&self) -> usize;
    /// Number of columns.
    fn n_cols(&self) -> usize;
    /// Number of stored entries.
    fn nnz(&self) -> usize;
    /// Stored entries in row `i`.
    fn degree(&self, i: usize) -> usize;
    /// Column indices of row `i`, ascending.
    fn row(&self, i: usize) -> &[VertexId];
    /// Values of row `i`, aligned with [`RowAccess::row`].
    fn row_values(&self, i: usize) -> &[V];
    /// Average entries per row — the `d` of the Table 1 cost model.
    fn avg_degree(&self) -> f64 {
        if self.n_rows() == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.n_rows() as f64
        }
    }
    /// Sorted ids of the non-empty rows, when the store tracks them
    /// (hypersparse DCSR does; CSR and bitmap return `None`). Kernels may
    /// use this to skip empty rows in full scans, provided they charge the
    /// same counter totals the unskipped scan would.
    fn nonempty_rows(&self) -> Option<&[VertexId]> {
        None
    }
    /// Row `i` as packed `u64` membership words, when the store keeps such
    /// a layout ([`BitmapStore`] does; CSR and DCSR return `None`). The
    /// result is `(start_word, words)`: bit `j % 64` of `words[j/64 -
    /// start_word]` is set iff `(i, j)` is stored, and every stored column
    /// of the row satisfies `start_word ≤ j/64 < start_word + words.len()`
    /// (the row's tile window — bits outside the window are implicitly
    /// zero). This is the word surface the bit-parallel boolean kernels
    /// AND/OR against; tail bits beyond `n_cols` in the last window word
    /// are always zero.
    fn row_word_span(&self, _i: usize) -> Option<(usize, &[u64])> {
        None
    }
    /// `true` when [`RowAccess::row_word_span`] returns `Some` for every
    /// row with stored entries — lets dispatchers pick the bit-parallel
    /// kernel without probing. (Rows in fully-empty tiles may still return
    /// `None`; kernels fall back to the scalar probe for those.)
    fn has_row_words(&self) -> bool {
        false
    }
}

impl<V: Copy + Send + Sync> RowAccess<V> for Csr<V> {
    fn n_rows(&self) -> usize {
        Csr::n_rows(self)
    }
    fn n_cols(&self) -> usize {
        Csr::n_cols(self)
    }
    fn nnz(&self) -> usize {
        Csr::nnz(self)
    }
    fn degree(&self, i: usize) -> usize {
        Csr::degree(self, i)
    }
    fn row(&self, i: usize) -> &[VertexId] {
        Csr::row(self, i)
    }
    fn row_values(&self, i: usize) -> &[V] {
        Csr::row_values(self, i)
    }
}

// ---------------------------------------------------------------------------
// Tiled bitmap store
// ---------------------------------------------------------------------------

/// Rows per bitmap tile: the tiled store partitions rows into stripes of
/// this height and sizes each stripe's column window independently.
pub const TILE_ROWS: usize = 64;

/// The allocation plan of a tiled bitmap over one CSR: per-tile column
/// word windows and the total word count they cost, computed in one O(n)
/// pass *without* building anything. [`Graph`](crate::Graph) caches one
/// plan per orientation, so the feasibility verdict
/// ([`BitmapPlan::feasible`]) and the byte charge ([`BitmapPlan::bytes`])
/// are each computed at most once per graph — not once per operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitmapPlan {
    /// `(start_word, width_words)` per [`TILE_ROWS`]-row tile; width 0
    /// marks a tile with no stored entries (nothing allocated).
    windows: Vec<(u32, u32)>,
    /// Arena `u64` words a build would allocate (sum of
    /// `rows_in_tile · width` over occupied tiles).
    words: u64,
    /// Number of tiles with at least one stored entry.
    occupied: usize,
}

impl BitmapPlan {
    /// Plan the tiled bitmap for a CSR: per tile, the window spans from
    /// the smallest to the largest column word any of its rows stores —
    /// O(1) per row (CSR rows are sorted, so only the endpoints matter).
    #[must_use]
    pub fn from_csr<V: Copy + Send + Sync>(csr: &Csr<V>) -> Self {
        let n_tiles = csr.n_rows().div_ceil(TILE_ROWS);
        let mut windows = vec![(0u32, 0u32); n_tiles];
        let mut words = 0u64;
        let mut occupied = 0usize;
        for (t, win) in windows.iter_mut().enumerate() {
            let r0 = t * TILE_ROWS;
            let r1 = (r0 + TILE_ROWS).min(csr.n_rows());
            let mut lo = u32::MAX;
            let mut hi = 0u32;
            let mut any = false;
            for i in r0..r1 {
                let cols = csr.row(i);
                if let (Some(&first), Some(&last)) = (cols.first(), cols.last()) {
                    any = true;
                    lo = lo.min(first / 64);
                    hi = hi.max(last / 64);
                }
            }
            if any {
                let width = hi - lo + 1;
                *win = (lo, width);
                words += (r1 - r0) as u64 * u64::from(width);
                occupied += 1;
            }
        }
        Self {
            windows,
            words,
            occupied,
        }
    }

    /// Whether the planned allocation stays under
    /// [`BitmapStore::MAX_BITS`] — the per-occupancy feasibility rule that
    /// replaced the old dense `n_rows·n_cols ≤ MAX_BITS` shape cliff.
    #[must_use]
    pub fn feasible(&self) -> bool {
        self.words
            .checked_mul(64)
            .is_some_and(|bits| bits <= BitmapStore::<bool>::MAX_BITS as u64)
    }

    /// Arena `u64` words a build allocates.
    #[must_use]
    pub fn words(&self) -> u64 {
        self.words
    }

    /// Bytes a build allocates (the tiled membership arena; the CSR
    /// payload is shared, not copied) — what the execution layer charges
    /// against a bytes budget before converting.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.words * 8
    }

    /// Number of tiles holding at least one stored entry.
    #[must_use]
    pub fn occupied_tiles(&self) -> usize {
        self.occupied
    }

    /// Total number of tiles (`⌈n_rows / TILE_ROWS⌉`).
    #[must_use]
    pub fn tiles(&self) -> usize {
        self.windows.len()
    }

    /// Average allocated words per row (`words / n_rows`) — the measured
    /// cost model's per-row word-scan price for this operand.
    #[must_use]
    pub fn avg_words_per_row(&self, n_rows: usize) -> f64 {
        if n_rows == 0 {
            0.0
        } else {
            self.words as f64 / n_rows as f64
        }
    }
}

/// Where one tile's rows live in the arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct TileLoc {
    /// First column word the window covers.
    start: u32,
    /// Window width in words (0 = tile holds no entries, nothing stored).
    width: u32,
    /// Arena offset of the tile's first row.
    offset: usize,
}

/// CSR payload plus a **tiled** membership bitmap.
///
/// The bitmap answers `has(i, j)` in O(1) — the probe dense algebra
/// (masking by matrix pattern, triangle-style membership checks) wants
/// when `nnz/n` is high — while the CSR-ordered payload keeps the row
/// slices the matvec kernels iterate, so the kernels run unchanged.
///
/// Rows are partitioned into [`TILE_ROWS`]-row tiles. Each tile with at
/// least one stored entry allocates a `rows × width` word grid covering
/// only the column word window `[start, start + width)` its edges span
/// (banded and clustered graphs allocate narrow windows; empty tiles
/// allocate nothing). Every row still starts on a word boundary inside
/// its tile, so [`RowAccess::row_word_span`] hands the bit-parallel
/// kernels an aligned `(start_word, words)` slice to AND/OR against. Tail
/// bits beyond `n_cols`, and all bits outside a row's window, are zero.
///
/// Memory: `nnz` payload + 64·[`BitmapPlan::words`] bits; construction
/// refuses plans whose *allocated* bits exceed [`BitmapStore::MAX_BITS`]
/// (the planner only selects bitmap when the plan fits).
#[derive(Clone, Debug, PartialEq)]
pub struct BitmapStore<V> {
    // Shared, not copied: `Graph`'s format cache already holds the same
    // CSR behind an `Arc`, so the bitmap store costs only the bitmap.
    csr: std::sync::Arc<Csr<V>>,
    arena: Vec<u64>,
    tiles: Vec<TileLoc>,
}

impl<V: Copy + Send + Sync> BitmapStore<V> {
    /// Bitmap ceiling on *allocated* bits (16 GiB of arena). Because tiles
    /// only pay for the column windows they occupy, every banded or
    /// moderately-sized dense graph fits; what this refuses is a huge
    /// scale-free graph whose every tile spans the full column range.
    pub const MAX_BITS: usize = 1 << 37;

    /// Build from a shared CSR and a precomputed plan (payload is shared,
    /// never copied), or `None` when the plan is infeasible. Callers with
    /// a [`Graph`](crate::Graph) get the cached plan for free; others can
    /// compute one with [`BitmapPlan::from_csr`].
    #[must_use]
    pub fn from_plan(csr: std::sync::Arc<Csr<V>>, plan: &BitmapPlan) -> Option<Self> {
        if !plan.feasible() {
            return None;
        }
        debug_assert_eq!(plan.tiles(), csr.n_rows().div_ceil(TILE_ROWS));
        let mut tiles = Vec::with_capacity(plan.windows.len());
        let mut offset = 0usize;
        for (t, &(start, width)) in plan.windows.iter().enumerate() {
            tiles.push(TileLoc {
                start,
                width,
                offset,
            });
            if width > 0 {
                let r0 = t * TILE_ROWS;
                let r1 = (r0 + TILE_ROWS).min(csr.n_rows());
                offset += (r1 - r0) * width as usize;
            }
        }
        let mut arena = vec![0u64; offset];
        for (t, loc) in tiles.iter().enumerate() {
            if loc.width == 0 {
                continue;
            }
            let r0 = t * TILE_ROWS;
            let r1 = (r0 + TILE_ROWS).min(csr.n_rows());
            for i in r0..r1 {
                let base = loc.offset + (i - r0) * loc.width as usize;
                for &j in csr.row(i) {
                    let w = (j / 64 - loc.start) as usize;
                    arena[base + w] |= 1u64 << (j % 64);
                }
            }
        }
        Some(Self { csr, arena, tiles })
    }

    /// Build from a shared CSR (payload is shared, never copied), planning
    /// the tiling on the fly, or `None` when the allocation would exceed
    /// [`BitmapStore::MAX_BITS`].
    #[must_use]
    pub fn try_from_shared(csr: std::sync::Arc<Csr<V>>) -> Option<Self> {
        let plan = BitmapPlan::from_csr(&csr);
        Self::from_plan(csr, &plan)
    }

    /// Build from a borrowed CSR (clones the payload into a fresh `Arc`),
    /// or `None` when the bitmap would not fit. Callers that already hold
    /// an `Arc` should use [`BitmapStore::try_from_shared`].
    #[must_use]
    pub fn try_from_csr(csr: &Csr<V>) -> Option<Self> {
        Self::try_from_shared(std::sync::Arc::new(csr.clone()))
    }

    /// O(1) membership: is `(i, j)` a stored entry?
    #[inline]
    #[must_use]
    pub fn has(&self, i: usize, j: usize) -> bool {
        debug_assert!(j < self.csr.n_cols());
        let loc = self.tiles[i / TILE_ROWS];
        let w = j / 64;
        if loc.width == 0 || w < loc.start as usize || w >= (loc.start + loc.width) as usize {
            return false;
        }
        let base = loc.offset + (i % TILE_ROWS) * loc.width as usize;
        self.arena[base + (w - loc.start as usize)] & (1u64 << (j % 64)) != 0
    }

    /// Total arena words allocated across all tiles.
    #[inline]
    #[must_use]
    pub fn arena_words(&self) -> usize {
        self.arena.len()
    }

    /// Row `i`'s membership window as `(start_word, words)`: bit `j % 64`
    /// of `words[j/64 - start_word]` is set iff `(i, j)` is stored, and
    /// every stored column falls inside the window. `None` when row `i`'s
    /// tile holds no entries at all (nothing was allocated for it).
    #[inline]
    #[must_use]
    pub fn row_word_span(&self, i: usize) -> Option<(usize, &[u64])> {
        let loc = self.tiles[i / TILE_ROWS];
        if loc.width == 0 {
            return None;
        }
        let base = loc.offset + (i % TILE_ROWS) * loc.width as usize;
        Some((
            loc.start as usize,
            &self.arena[base..base + loc.width as usize],
        ))
    }

    /// Value at `(i, j)`: an O(1) bitmap probe, then a binary search of
    /// the (short) row only when the entry exists.
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> Option<V> {
        if !self.has(i, j) {
            return None;
        }
        // Bitmap and payload are built from the same CSR, so the search
        // succeeds; an impossible disagreement reads as absent, not a panic.
        let pos = self.csr.row(i).binary_search(&(j as VertexId)).ok()?;
        Some(self.csr.row_values(i)[pos])
    }

    /// The CSR payload this store wraps.
    #[must_use]
    pub fn as_csr(&self) -> &Csr<V> {
        &self.csr
    }

    /// Convert back to plain CSR (drops the bitmap).
    #[must_use]
    pub fn to_csr(&self) -> Csr<V> {
        (*self.csr).clone()
    }
}

impl<V: Copy + Send + Sync> RowAccess<V> for BitmapStore<V> {
    fn n_rows(&self) -> usize {
        self.csr.n_rows()
    }
    fn n_cols(&self) -> usize {
        self.csr.n_cols()
    }
    fn nnz(&self) -> usize {
        self.csr.nnz()
    }
    fn degree(&self, i: usize) -> usize {
        self.csr.degree(i)
    }
    fn row(&self, i: usize) -> &[VertexId] {
        self.csr.row(i)
    }
    fn row_values(&self, i: usize) -> &[V] {
        self.csr.row_values(i)
    }
    fn row_word_span(&self, i: usize) -> Option<(usize, &[u64])> {
        BitmapStore::row_word_span(self, i)
    }
    fn has_row_words(&self) -> bool {
        true
    }
}

// ---------------------------------------------------------------------------
// Hypersparse DCSR
// ---------------------------------------------------------------------------

/// Doubly-compressed sparse row: pointers exist only for non-empty rows.
///
/// `rows[p]` names the `p`-th non-empty row; `row_ptr[p]..row_ptr[p+1]`
/// is its slice of `col_ind`/`values`. Looking up an arbitrary row costs
/// a binary search over the non-empty list — O(log nnz_rows) instead of
/// CSR's O(1) — but a full-matrix scan touches `nnz_rows` rows instead of
/// `n`, which is the asymptotic win when the matrix is hypersparse
/// (a k-source batch embedded in a large vertex space, a frontier slice
/// of a scale-free graph).
#[derive(Clone, Debug, PartialEq)]
pub struct Dcsr<V> {
    n_rows: usize,
    n_cols: usize,
    rows: Vec<VertexId>,
    row_ptr: Vec<usize>,
    col_ind: Vec<VertexId>,
    values: Vec<V>,
}

impl<V: Copy + Send + Sync> Dcsr<V> {
    /// Compress a CSR: one pass over `row_ptr`, dropping empty rows.
    #[must_use]
    pub fn from_csr(csr: &Csr<V>) -> Self {
        let mut rows = Vec::new();
        let mut row_ptr = vec![0usize];
        let mut total = 0usize;
        for i in 0..csr.n_rows() {
            if csr.degree(i) > 0 {
                rows.push(i as VertexId);
                total += csr.degree(i);
                row_ptr.push(total);
            }
        }
        Self {
            n_rows: csr.n_rows(),
            n_cols: csr.n_cols(),
            rows,
            row_ptr,
            col_ind: csr.col_ind().to_vec(),
            values: csr.values().to_vec(),
        }
    }

    /// Expand back to plain CSR.
    #[must_use]
    pub fn to_csr(&self) -> Csr<V> {
        let mut row_ptr = vec![0usize; self.n_rows + 1];
        for (p, &i) in self.rows.iter().enumerate() {
            row_ptr[i as usize + 1] = self.row_ptr[p + 1] - self.row_ptr[p];
        }
        for i in 0..self.n_rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        Csr::from_parts(
            self.n_rows,
            self.n_cols,
            row_ptr,
            self.col_ind.clone(),
            self.values.clone(),
        )
    }

    /// Number of non-empty rows.
    #[must_use]
    pub fn n_nonempty(&self) -> usize {
        self.rows.len()
    }

    /// Bytes a DCSR conversion of a CSR with `nonempty` non-empty rows
    /// would allocate for its compression structure (row list + compressed
    /// pointers; column/value payload is copied CSR payload and scales the
    /// same in every format) — what the execution layer charges against a
    /// bytes budget before converting.
    #[must_use]
    pub fn estimate_bytes(nonempty: usize) -> u64 {
        (nonempty as u64)
            * (std::mem::size_of::<VertexId>() as u64 + std::mem::size_of::<usize>() as u64)
            + std::mem::size_of::<usize>() as u64
    }

    /// Fraction of rows that are non-empty (`nnz_rows / n_rows`).
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        if self.n_rows == 0 {
            0.0
        } else {
            self.rows.len() as f64 / self.n_rows as f64
        }
    }

    /// Position of row `i` in the compressed list, when non-empty.
    #[inline]
    fn find(&self, i: usize) -> Option<usize> {
        self.rows.binary_search(&(i as VertexId)).ok()
    }

    /// Column indices of the `p`-th *non-empty* row (positional access —
    /// no binary search; pair with [`Dcsr::nonempty_rows`]).
    #[inline]
    #[must_use]
    pub fn compressed_row(&self, p: usize) -> &[VertexId] {
        &self.col_ind[self.row_ptr[p]..self.row_ptr[p + 1]]
    }

    /// Values of the `p`-th non-empty row.
    #[inline]
    #[must_use]
    pub fn compressed_row_values(&self, p: usize) -> &[V] {
        &self.values[self.row_ptr[p]..self.row_ptr[p + 1]]
    }
}

impl<V: Copy + Send + Sync> RowAccess<V> for Dcsr<V> {
    fn n_rows(&self) -> usize {
        self.n_rows
    }
    fn n_cols(&self) -> usize {
        self.n_cols
    }
    fn nnz(&self) -> usize {
        self.col_ind.len()
    }
    fn degree(&self, i: usize) -> usize {
        self.find(i)
            .map_or(0, |p| self.row_ptr[p + 1] - self.row_ptr[p])
    }
    fn row(&self, i: usize) -> &[VertexId] {
        self.find(i).map_or(&[], |p| self.compressed_row(p))
    }
    fn row_values(&self, i: usize) -> &[V] {
        self.find(i).map_or(&[], |p| self.compressed_row_values(p))
    }
    fn nonempty_rows(&self) -> Option<&[VertexId]> {
        Some(&self.rows)
    }
}

// ---------------------------------------------------------------------------
// Storage enum
// ---------------------------------------------------------------------------

/// A matrix in one of the three storage formats, with cheap conversions.
///
/// This is the owned object; [`crate::Graph`] caches one per requested
/// format per orientation so iterative algorithms convert at most once.
#[derive(Clone, Debug, PartialEq)]
pub enum Storage<V> {
    /// Plain CSR.
    Csr(Csr<V>),
    /// CSR payload + membership bitmap.
    Bitmap(BitmapStore<V>),
    /// Hypersparse doubly-compressed rows.
    Dcsr(Dcsr<V>),
}

impl<V: Copy + Send + Sync> Storage<V> {
    /// Wrap a CSR in the requested format. A bitmap request whose plan is
    /// infeasible ([`BitmapPlan::feasible`]) degrades to [`Storage::Csr`]
    /// — the same fallback the planner applies, so requested and effective
    /// formats only diverge on infeasible bitmaps.
    #[must_use]
    pub fn from_csr(csr: Csr<V>, format: StorageFormat) -> Self {
        match format {
            StorageFormat::Csr => Storage::Csr(csr),
            StorageFormat::Bitmap => {
                let shared = std::sync::Arc::new(csr);
                match BitmapStore::try_from_shared(std::sync::Arc::clone(&shared)) {
                    Some(b) => Storage::Bitmap(b),
                    None => Storage::Csr(
                        std::sync::Arc::try_unwrap(shared).unwrap_or_else(|a| (*a).clone()),
                    ),
                }
            }
            StorageFormat::Dcsr => Storage::Dcsr(Dcsr::from_csr(&csr)),
        }
    }

    /// Build straight from a deduplicated COO.
    #[must_use]
    pub fn from_coo(coo: &Coo<V>, format: StorageFormat) -> Self {
        Self::from_csr(Csr::from_coo(coo), format)
    }

    /// The format this storage currently holds.
    #[must_use]
    pub fn format(&self) -> StorageFormat {
        match self {
            Storage::Csr(_) => StorageFormat::Csr,
            Storage::Bitmap(_) => StorageFormat::Bitmap,
            Storage::Dcsr(_) => StorageFormat::Dcsr,
        }
    }

    /// Convert to the requested format (no-op when already there; bitmap
    /// degrades to CSR when infeasible, as in [`Storage::from_csr`]).
    #[must_use]
    pub fn convert(self, format: StorageFormat) -> Self {
        if self.format() == format {
            return self;
        }
        Storage::from_csr(self.into_csr(), format)
    }

    /// Unwrap to plain CSR, converting if needed.
    #[must_use]
    pub fn into_csr(self) -> Csr<V> {
        match self {
            Storage::Csr(c) => c,
            Storage::Bitmap(b) => b.to_csr(),
            Storage::Dcsr(d) => d.to_csr(),
        }
    }
}

impl<V: Copy + Send + Sync> RowAccess<V> for Storage<V> {
    fn n_rows(&self) -> usize {
        match self {
            Storage::Csr(c) => RowAccess::<V>::n_rows(c),
            Storage::Bitmap(b) => b.n_rows(),
            Storage::Dcsr(d) => RowAccess::<V>::n_rows(d),
        }
    }
    fn n_cols(&self) -> usize {
        match self {
            Storage::Csr(c) => RowAccess::<V>::n_cols(c),
            Storage::Bitmap(b) => b.n_cols(),
            Storage::Dcsr(d) => RowAccess::<V>::n_cols(d),
        }
    }
    fn nnz(&self) -> usize {
        match self {
            Storage::Csr(c) => RowAccess::<V>::nnz(c),
            Storage::Bitmap(b) => RowAccess::<V>::nnz(b),
            Storage::Dcsr(d) => RowAccess::<V>::nnz(d),
        }
    }
    fn degree(&self, i: usize) -> usize {
        match self {
            Storage::Csr(c) => RowAccess::<V>::degree(c, i),
            Storage::Bitmap(b) => RowAccess::<V>::degree(b, i),
            Storage::Dcsr(d) => RowAccess::<V>::degree(d, i),
        }
    }
    fn row(&self, i: usize) -> &[VertexId] {
        match self {
            Storage::Csr(c) => RowAccess::<V>::row(c, i),
            Storage::Bitmap(b) => RowAccess::<V>::row(b, i),
            Storage::Dcsr(d) => RowAccess::<V>::row(d, i),
        }
    }
    fn row_values(&self, i: usize) -> &[V] {
        match self {
            Storage::Csr(c) => RowAccess::<V>::row_values(c, i),
            Storage::Bitmap(b) => RowAccess::<V>::row_values(b, i),
            Storage::Dcsr(d) => RowAccess::<V>::row_values(d, i),
        }
    }
    fn nonempty_rows(&self) -> Option<&[VertexId]> {
        match self {
            Storage::Csr(_) | Storage::Bitmap(_) => None,
            Storage::Dcsr(d) => RowAccess::<V>::nonempty_rows(d),
        }
    }
    fn row_word_span(&self, i: usize) -> Option<(usize, &[u64])> {
        match self {
            Storage::Csr(_) | Storage::Dcsr(_) => None,
            Storage::Bitmap(b) => RowAccess::<V>::row_word_span(b, i),
        }
    }
    fn has_row_words(&self) -> bool {
        matches!(self, Storage::Bitmap(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4 rows, rows 1 and 3 empty: 0→{1,2}, 2→{0,3}.
    fn gappy_csr() -> Csr<f32> {
        let mut coo = Coo::new(4, 4);
        for &(r, c) in &[(0u32, 1u32), (0, 2), (2, 0), (2, 3)] {
            coo.push(r, c, (r * 10 + c) as f32);
        }
        Csr::from_coo(&coo)
    }

    fn same_rows<V: Copy + Send + Sync + PartialEq + std::fmt::Debug>(
        a: &dyn RowAccess<V>,
        b: &dyn RowAccess<V>,
    ) {
        assert_eq!(a.n_rows(), b.n_rows());
        assert_eq!(a.n_cols(), b.n_cols());
        assert_eq!(a.nnz(), b.nnz());
        for i in 0..a.n_rows() {
            assert_eq!(a.row(i), b.row(i), "row {i}");
            assert_eq!(a.row_values(i), b.row_values(i), "row values {i}");
            assert_eq!(a.degree(i), b.degree(i), "degree {i}");
        }
    }

    #[test]
    fn dcsr_roundtrip_preserves_everything() {
        let csr = gappy_csr();
        let d = Dcsr::from_csr(&csr);
        assert_eq!(d.n_nonempty(), 2);
        assert_eq!(d.nonempty_rows(), Some(&[0u32, 2][..]));
        assert!((d.occupancy() - 0.5).abs() < 1e-12);
        same_rows(&csr, &d);
        assert_eq!(d.to_csr(), csr);
    }

    #[test]
    fn dcsr_empty_rows_read_empty() {
        let d = Dcsr::from_csr(&gappy_csr());
        assert_eq!(RowAccess::<f32>::row(&d, 1), &[] as &[u32]);
        assert_eq!(RowAccess::<f32>::degree(&d, 3), 0);
        assert_eq!(d.compressed_row(1), &[0, 3]);
    }

    #[test]
    fn bitmap_membership_and_values() {
        let csr = gappy_csr();
        let b = BitmapStore::try_from_csr(&csr).expect("4×4 fits");
        same_rows(&csr, &b);
        assert!(b.has(0, 1));
        assert!(!b.has(1, 0));
        assert_eq!(b.get(2, 3), Some(23.0));
        assert_eq!(b.get(3, 3), None);
        assert_eq!(b.to_csr(), csr);
    }

    /// One 64-row tile whose single stored row spans the full `u32` column
    /// range: the window is `2^26` words wide, the tile allocates
    /// `64 · 2^26` words = `2^38` bits — over the `2^37` budget.
    fn infeasible_wide_csr() -> Csr<bool> {
        Csr::<bool>::from_parts(
            64,
            1usize << 32,
            {
                let mut ptr = vec![0usize; 65];
                for p in ptr.iter_mut().skip(1) {
                    *p = 2;
                }
                ptr
            },
            vec![0, u32::MAX],
            vec![true, true],
        )
    }

    #[test]
    fn bitmap_plan_gates_on_allocated_bits_not_shape() {
        // Occupancy-based: a huge diagonal graph plans one narrow window
        // per tile and stays feasible even though n² is astronomical.
        let n = 1 << 20;
        let mut coo = Coo::new(n, n);
        for i in (0..n).step_by(TILE_ROWS) {
            coo.push(i as VertexId, i as VertexId, true);
        }
        let diag = Csr::from_coo(&coo);
        let plan = BitmapPlan::from_csr(&diag);
        assert!(plan.feasible());
        assert_eq!(plan.tiles(), n / TILE_ROWS);
        assert_eq!(plan.occupied_tiles(), n / TILE_ROWS);
        // Each occupied tile: 64 rows × 1-word window.
        assert_eq!(plan.words(), (n as u64 / TILE_ROWS as u64) * 64);
        assert_eq!(plan.bytes(), plan.words() * 8);

        // A single tile whose window spans the full u32 column range blows
        // the allocated-bit budget even with only one nonempty row.
        let wide = infeasible_wide_csr();
        let plan = BitmapPlan::from_csr(&wide);
        assert!(!plan.feasible());
        assert!(BitmapStore::try_from_csr(&wide).is_none());
    }

    #[test]
    fn bitmap_row_spans_are_windowed_and_tail_masked() {
        // 3 rows × 70 cols: the tile's window covers words 0..2, every row
        // starts word-aligned inside the tile.
        let mut coo = Coo::new(3, 70);
        for &(r, c) in &[(0u32, 0u32), (0, 63), (0, 64), (1, 69), (2, 1)] {
            coo.push(r, c, true);
        }
        let csr = Csr::from_coo(&coo);
        let b = BitmapStore::try_from_csr(&csr).expect("fits");
        assert!(b.has_row_words());
        assert_eq!(b.arena_words(), 6);
        assert_eq!(b.row_word_span(0), Some((0, &[(1u64 << 63) | 1, 1][..])));
        assert_eq!(b.row_word_span(1), Some((0, &[0, 1u64 << 5][..])));
        assert_eq!(b.row_word_span(2), Some((0, &[2, 0][..])));
        assert_eq!(
            RowAccess::<bool>::row_word_span(&b, 2),
            Some((0, &[2u64, 0][..]))
        );
        // Membership agrees with the word layout across the pad boundary.
        assert!(b.has(0, 63) && b.has(0, 64) && b.has(1, 69));
        assert!(!b.has(1, 63) && !b.has(2, 69));
        // CSR and DCSR expose no word surface.
        assert!(!RowAccess::<bool>::has_row_words(&csr));
        assert_eq!(RowAccess::<bool>::row_word_span(&csr, 0), None);
        let d = Dcsr::from_csr(&csr);
        assert!(!RowAccess::<bool>::has_row_words(&d));
    }

    #[test]
    fn bitmap_windows_start_past_word_zero() {
        // A tile whose edges all live in high column words: the window
        // starts at word 2 and bits below it are implicitly absent.
        let mut coo = Coo::new(2, 300);
        for &(r, c) in &[(0u32, 130u32), (0, 200), (1, 191)] {
            coo.push(r, c, true);
        }
        let csr = Csr::from_coo(&coo);
        let b = BitmapStore::try_from_csr(&csr).expect("fits");
        // Window words 2..=3 (cols 128..256): width 2, start 2.
        assert_eq!(b.arena_words(), 4);
        let (start, words) = b.row_word_span(0).expect("occupied tile");
        assert_eq!(start, 2);
        assert_eq!(words, &[(1u64 << (130 - 128)), 1u64 << (200 - 192)]);
        let (start, words) = b.row_word_span(1).expect("occupied tile");
        assert_eq!(start, 2);
        assert_eq!(words, &[1u64 << 63, 0]);
        assert!(b.has(0, 130) && b.has(0, 200) && b.has(1, 191));
        assert!(!b.has(0, 0) && !b.has(1, 64) && !b.has(0, 299));
        same_rows(&csr, &b);
    }

    #[test]
    fn bitmap_tiles_straddle_boundaries_and_skip_empty_tiles() {
        // Rows straddle two tiles (n = TILE_ROWS + 1) with the second tile
        // holding exactly one edge; the span surface stays exact.
        let n = TILE_ROWS + 1;
        let mut coo = Coo::new(n, n);
        coo.push(0, 3, true);
        coo.push((TILE_ROWS - 1) as VertexId, 0, true);
        coo.push(TILE_ROWS as VertexId, (n - 1) as VertexId, true);
        let csr = Csr::from_coo(&coo);
        let b = BitmapStore::try_from_csr(&csr).expect("fits");
        assert!(b.has(0, 3) && b.has(TILE_ROWS - 1, 0) && b.has(TILE_ROWS, n - 1));
        assert!(!b.has(1, 3) && !b.has(TILE_ROWS, 0));
        let (s0, w0) = b.row_word_span(0).expect("tile 0 occupied");
        assert_eq!((s0, w0), (0, &[8u64][..]));
        let (s1, w1) = b.row_word_span(TILE_ROWS).expect("tile 1 occupied");
        assert_eq!((s1, w1), (1, &[1u64][..]));
        same_rows(&csr, &b);

        // Middle tile empty: nothing allocated for it, spans return None.
        let n = 3 * TILE_ROWS;
        let mut coo = Coo::new(n, n);
        coo.push(1, 1, true);
        coo.push((2 * TILE_ROWS) as VertexId, 2, true);
        let csr = Csr::from_coo(&coo);
        let b = BitmapStore::try_from_csr(&csr).expect("fits");
        let plan = BitmapPlan::from_csr(&csr);
        assert_eq!(plan.tiles(), 3);
        assert_eq!(plan.occupied_tiles(), 2);
        assert!(b.row_word_span(TILE_ROWS).is_none());
        assert!(b.row_word_span(TILE_ROWS + 5).is_none());
        assert!(b.row_word_span(1).is_some());
        assert!(b.row_word_span(2 * TILE_ROWS).is_some());
        assert!(!b.has(TILE_ROWS, 1), "empty tile reads absent");
        same_rows(&csr, &b);
    }

    #[test]
    fn storage_conversion_cycle() {
        let csr = gappy_csr();
        let mut s = Storage::from_csr(csr.clone(), StorageFormat::Csr);
        for f in [
            StorageFormat::Bitmap,
            StorageFormat::Dcsr,
            StorageFormat::Csr,
            StorageFormat::Dcsr,
            StorageFormat::Bitmap,
        ] {
            s = s.convert(f);
            assert_eq!(s.format(), f);
            same_rows(&csr, &s);
        }
        assert_eq!(s.into_csr(), csr);
    }

    #[test]
    fn storage_bitmap_degrades_when_infeasible() {
        // A tile spanning the full u32 column range: bitmap cannot fit.
        let s = Storage::from_csr(infeasible_wide_csr(), StorageFormat::Bitmap);
        assert_eq!(s.format(), StorageFormat::Csr, "fallback to CSR");
    }

    #[test]
    fn format_names_are_stable() {
        assert_eq!(StorageFormat::Csr.name(), "csr");
        assert_eq!(StorageFormat::Bitmap.to_string(), "bitmap");
        assert_eq!(StorageFormat::all().len(), 3);
        assert_eq!(StorageFormat::default(), StorageFormat::Csr);
    }

    #[test]
    fn all_empty_matrix_is_fully_hypersparse() {
        let csr = Csr::<bool>::from_coo(&Coo::new(8, 8));
        let d = Dcsr::from_csr(&csr);
        assert_eq!(d.n_nonempty(), 0);
        assert_eq!(d.occupancy(), 0.0);
        assert_eq!(d.to_csr(), csr);
    }
}
