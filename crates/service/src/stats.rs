//! Service-level statistics over a trace outcome: throughput, latency
//! percentiles, batch-size histogram, coalescing rate.

use crate::trace::TraceOutcome;

/// Aggregated serve metrics.
#[derive(Clone, Debug)]
pub struct ServeStats {
    /// Requests completed per virtual second.
    pub qps: f64,
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
    /// Fraction of requests that executed in a same-kind group of
    /// size > 1 (shared a batched traversal).
    pub coalescing_rate: f64,
    /// `hist[i]` = number of admitted batches of size `i + 1`.
    pub batch_hist: Vec<usize>,
    /// Largest admitted batch.
    pub max_batch: usize,
    /// Largest same-kind coalesced group.
    pub max_group: usize,
    /// Requests that returned a typed abort.
    pub aborted: usize,
}

/// Nearest-rank percentile (`p` in `[0, 100]`) over an unsorted sample.
#[must_use]
pub fn percentile_ns(samples: &[u128], p: f64) -> u128 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

const NS_PER_MS: f64 = 1e6;

/// Reduce a trace outcome to its serve metrics.
#[must_use]
pub fn compute(outcome: &TraceOutcome) -> ServeStats {
    let n = outcome.responses.len();
    let qps = if outcome.total_ns == 0 {
        0.0
    } else {
        n as f64 * 1e9 / outcome.total_ns as f64
    };
    let coalesced = outcome
        .responses
        .iter()
        .filter(|r| r.group_size > 1)
        .count();
    let aborted = outcome
        .responses
        .iter()
        .filter(|r| r.result.is_err())
        .count();
    let max_batch = outcome.batches.iter().map(Vec::len).max().unwrap_or(0);
    let mut batch_hist = vec![0usize; max_batch];
    for b in &outcome.batches {
        if !b.is_empty() {
            batch_hist[b.len() - 1] += 1;
        }
    }
    ServeStats {
        qps,
        p50_ms: percentile_ns(&outcome.latencies_ns, 50.0) as f64 / NS_PER_MS,
        p95_ms: percentile_ns(&outcome.latencies_ns, 95.0) as f64 / NS_PER_MS,
        p99_ms: percentile_ns(&outcome.latencies_ns, 99.0) as f64 / NS_PER_MS,
        coalescing_rate: if n == 0 {
            0.0
        } else {
            coalesced as f64 / n as f64
        },
        batch_hist,
        max_batch,
        max_group: outcome
            .responses
            .iter()
            .map(|r| r.group_size)
            .max()
            .unwrap_or(0),
        aborted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles_are_monotone() {
        let samples: Vec<u128> = (1..=100).rev().collect();
        assert_eq!(percentile_ns(&samples, 50.0), 50);
        assert_eq!(percentile_ns(&samples, 95.0), 95);
        assert_eq!(percentile_ns(&samples, 99.0), 99);
        assert_eq!(percentile_ns(&samples, 100.0), 100);
        assert!(percentile_ns(&samples, 50.0) <= percentile_ns(&samples, 95.0));
    }

    #[test]
    fn empty_sample_is_zero() {
        assert_eq!(percentile_ns(&[], 99.0), 0);
    }
}
