//! Batch execution: same-kind single-source queries coalesce into one
//! batched traversal (the entries drivers), everything else runs solo
//! under `run_guarded` — in both paths each request is metered and
//! limited through its own counter set.

use graphblas_algo::bc::{try_betweenness_with_opts, BcOpts};
use graphblas_algo::bfs_parents::ParentBfsOpts;
use graphblas_algo::msbfs::MsBfsOpts;
use graphblas_algo::pagerank::{try_pagerank_with_counters, PageRankOpts};
use graphblas_algo::sssp::SsspOpts;
use graphblas_algo::{bfs_parents_entries, multi_source_bfs_entries, sssp_entries, BatchEntry};
use graphblas_core::{GrbError, GrbResult};
use graphblas_matrix::{Graph, VertexId};
use graphblas_primitives::counters::AccessCounters;

use crate::request::{Query, QueryKind, QueryOutput, Request, Response};

/// The shared operands every query runs against: one Boolean structure
/// (BFS / parent BFS / PageRank / BC) and one weighted view of the same
/// topology (SSSP). Both carry their own `FormatCache`, shared across
/// all concurrent queries — a tripped request never poisons it.
#[derive(Debug)]
pub struct ServiceGraphs {
    pub boolean: Graph<bool>,
    pub weighted: Graph<f32>,
}

impl ServiceGraphs {
    /// # Panics
    /// If the two views disagree on vertex count.
    #[must_use]
    pub fn new(boolean: Graph<bool>, weighted: Graph<f32>) -> Self {
        assert_eq!(
            boolean.n_vertices(),
            weighted.n_vertices(),
            "boolean and weighted views must share the vertex set"
        );
        Self { boolean, weighted }
    }

    #[must_use]
    pub fn n_vertices(&self) -> usize {
        self.boolean.n_vertices()
    }
}

/// Per-algorithm options the service dispatches under (defaults match
/// the solo entry points).
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecOpts {
    pub bfs: MsBfsOpts,
    pub parents: ParentBfsOpts,
    pub sssp: SsspOpts,
    pub pagerank: PageRankOpts,
    pub bc: BcOpts,
}

/// Execute one admitted batch. Coalescible kinds run as one entries
/// batch per kind; a request whose coalesced group hit a worker-chunk
/// panic is de-coalesced and retried solo once (transient chunk faults
/// don't condemn innocent passengers); its retry failure is returned
/// typed. `shared` receives the batch-scoped charges (format planning,
/// conversions) plus the fold of all per-request work.
pub fn execute_batch(
    graphs: &ServiceGraphs,
    opts: &ExecOpts,
    batch: &[Request],
    shared: Option<&AccessCounters>,
) -> Vec<Response> {
    let k = batch.len();
    let counters: Vec<AccessCounters> = (0..k).map(|_| AccessCounters::new()).collect();
    let mut results: Vec<Option<GrbResult<QueryOutput>>> = (0..k).map(|_| None).collect();
    let mut group_sizes = vec![1usize; k];
    let mut retried = vec![false; k];

    for kind in [
        QueryKind::Bfs,
        QueryKind::Parents,
        QueryKind::Sssp,
        QueryKind::PageRank,
        QueryKind::Bc,
    ] {
        let idxs: Vec<usize> = (0..k).filter(|&i| batch[i].query.kind() == kind).collect();
        if idxs.is_empty() {
            continue;
        }
        match kind {
            QueryKind::Bfs => run_group(
                &idxs,
                batch,
                &counters,
                &mut results,
                &mut group_sizes,
                &mut retried,
                |entries| {
                    multi_source_bfs_entries(&graphs.boolean, entries, &opts.bfs, shared)
                        .into_iter()
                        .map(|r| r.map(QueryOutput::Bfs))
                        .collect()
                },
            ),
            QueryKind::Parents => run_group(
                &idxs,
                batch,
                &counters,
                &mut results,
                &mut group_sizes,
                &mut retried,
                |entries| {
                    bfs_parents_entries(&graphs.boolean, entries, &opts.parents, shared)
                        .into_iter()
                        .map(|r| r.map(QueryOutput::Parents))
                        .collect()
                },
            ),
            QueryKind::Sssp => run_group(
                &idxs,
                batch,
                &counters,
                &mut results,
                &mut group_sizes,
                &mut retried,
                |entries| {
                    sssp_entries(&graphs.weighted, entries, &opts.sssp, shared)
                        .into_iter()
                        .map(|r| r.map(QueryOutput::Sssp))
                        .collect()
                },
            ),
            QueryKind::PageRank => {
                for &i in &idxs {
                    let mut o = opts.pagerank;
                    o.limits = batch[i].limits;
                    let r =
                        try_pagerank_with_counters(&graphs.boolean, &o, false, Some(&counters[i]));
                    results[i] = Some(r.map(|pr| QueryOutput::PageRank {
                        ranks: pr.ranks,
                        iters: pr.iters,
                    }));
                }
            }
            QueryKind::Bc => {
                for &i in &idxs {
                    let Query::Bc { sources } = &batch[i].query else {
                        unreachable!("kind-filtered")
                    };
                    let mut o = opts.bc;
                    o.limits = batch[i].limits;
                    let r =
                        try_betweenness_with_opts(&graphs.boolean, sources, &o, Some(&counters[i]));
                    results[i] = Some(r.map(QueryOutput::Bc));
                }
            }
        }
    }

    batch
        .iter()
        .enumerate()
        .map(|(i, req)| Response {
            id: req.id,
            result: results[i].take().expect("every request resolved"),
            counters: counters[i].snapshot(),
            batch_size: k,
            group_size: group_sizes[i],
            retried_solo: retried[i],
        })
        .collect()
}

/// Source vertex of a coalescible query.
fn source_of(q: &Query) -> VertexId {
    match q {
        Query::Bfs { source } | Query::Parents { source } | Query::Sssp { source } => *source,
        Query::PageRank | Query::Bc { .. } => unreachable!("not coalescible"),
    }
}

/// Run one coalesced same-kind group through `run`, de-coalescing any
/// request whose group aborted on a worker panic for one solo retry.
fn run_group(
    idxs: &[usize],
    batch: &[Request],
    counters: &[AccessCounters],
    results: &mut [Option<GrbResult<QueryOutput>>],
    group_sizes: &mut [usize],
    retried: &mut [bool],
    run: impl Fn(&[BatchEntry<'_>]) -> Vec<GrbResult<QueryOutput>>,
) {
    let entries: Vec<BatchEntry<'_>> = idxs
        .iter()
        .map(|&i| {
            BatchEntry::new(source_of(&batch[i].query), &counters[i]).with_limits(batch[i].limits)
        })
        .collect();
    let rs = run(&entries);
    for (&i, r) in idxs.iter().zip(rs) {
        group_sizes[i] = idxs.len();
        results[i] = Some(match r {
            Err(GrbError::WorkerPanicked { .. }) if idxs.len() > 1 => {
                // The entry's counters were restored on abort, so the
                // solo retry runs from a fresh baseline.
                retried[i] = true;
                let solo = [BatchEntry::new(source_of(&batch[i].query), &counters[i])
                    .with_limits(batch[i].limits)];
                run(&solo).pop().expect("one entry, one result")
            }
            other => other,
        });
    }
}
