//! The live front: a thread-safe submission queue and a dispatcher
//! thread that admits micro-batches under a real-time window and runs
//! them through the coalescing executor. Inside a batch the kernels
//! spread work across the pool's lanes; the dispatcher itself stays
//! single so admission is a total order.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use graphblas_core::ExecLimits;

use crate::executor::{execute_batch, ExecOpts, ServiceGraphs};
use crate::request::{Query, Request, Response};

/// Live-service configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Real-time admission window: after the first pending request is
    /// seen, the dispatcher waits up to this long for company.
    pub window: Duration,
    /// Hard cap on an admitted batch.
    pub max_batch: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            window: Duration::from_millis(1),
            max_batch: 16,
        }
    }
}

struct Pending {
    request: Request,
    tx: mpsc::Sender<Response>,
}

struct State {
    pending: VecDeque<Pending>,
    shutdown: bool,
}

struct Inner {
    state: Mutex<State>,
    cv: Condvar,
}

/// Handle to one submitted query; resolves to its [`Response`].
pub struct Ticket {
    rx: mpsc::Receiver<Response>,
}

impl Ticket {
    /// Block until the service answers.
    ///
    /// # Panics
    /// If the service was shut down before answering.
    #[must_use]
    pub fn wait(self) -> Response {
        self.rx.recv().expect("service dropped without answering")
    }
}

/// A running query service over one shared graph pair.
pub struct Service {
    inner: Arc<Inner>,
    worker: Option<JoinHandle<()>>,
    next_id: AtomicU64,
}

impl Service {
    /// Start the dispatcher thread.
    #[must_use]
    pub fn start(graphs: ServiceGraphs, opts: ExecOpts, cfg: ServiceConfig) -> Self {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                pending: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
        });
        let worker_inner = Arc::clone(&inner);
        let worker = std::thread::spawn(move || dispatcher(&worker_inner, &graphs, &opts, cfg));
        Self {
            inner,
            worker: Some(worker),
            next_id: AtomicU64::new(0),
        }
    }

    /// Enqueue a query; returns immediately with a [`Ticket`].
    pub fn submit(&self, query: Query, limits: ExecLimits) -> Ticket {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        {
            let mut st = self.inner.state.lock().expect("service state");
            st.pending.push_back(Pending {
                request: Request::new(id, query).with_limits(limits),
                tx,
            });
        }
        self.inner.cv.notify_all();
        Ticket { rx }
    }

    /// Stop accepting work, drain the queue, and join the dispatcher.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        {
            let mut st = self.inner.state.lock().expect("service state");
            st.shutdown = true;
        }
        self.inner.cv.notify_all();
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.stop();
    }
}

fn dispatcher(inner: &Inner, graphs: &ServiceGraphs, opts: &ExecOpts, cfg: ServiceConfig) {
    loop {
        let mut st = inner.state.lock().expect("service state");
        while st.pending.is_empty() && !st.shutdown {
            st = inner.cv.wait(st).expect("service state");
        }
        if st.pending.is_empty() && st.shutdown {
            return;
        }
        // Admission window: collect company until the window closes, the
        // batch fills, or shutdown flushes everything immediately.
        let deadline = Instant::now() + cfg.window;
        while st.pending.len() < cfg.max_batch.max(1) && !st.shutdown {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (next, timeout) = inner
                .cv
                .wait_timeout(st, deadline - now)
                .expect("service state");
            st = next;
            if timeout.timed_out() {
                break;
            }
        }
        let take = st.pending.len().min(cfg.max_batch.max(1));
        let batch: Vec<Pending> = st.pending.drain(..take).collect();
        drop(st);

        let reqs: Vec<Request> = batch.iter().map(|p| p.request.clone()).collect();
        let responses = execute_batch(graphs, opts, &reqs, None);
        for (p, r) in batch.into_iter().zip(responses) {
            // A caller that dropped its ticket just doesn't hear back.
            let _ = p.tx.send(r);
        }
    }
}
