//! Windowed admission: micro-batches derived purely from arrival ticks.
//!
//! The first pending request opens an admission window; everything that
//! arrives within `window_ticks` of it joins the batch, up to
//! `max_batch`. The plan is a pure function of the arrival ticks — it
//! does not look at execution times — so a fixed seeded trace admits
//! identically at any lane count (`tests/thread_scaling.rs` pins this).

/// Admission parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Window length in ticks; 0 degenerates to sequential dispatch
    /// (every request its own batch — the bench baseline).
    pub window_ticks: u64,
    /// Hard cap on batch size; the window closes early when reached.
    pub max_batch: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            window_ticks: 8,
            max_batch: 16,
        }
    }
}

/// Group request indices into admission batches. `arrivals` must be
/// sorted ascending (trace order).
#[must_use]
pub fn plan_admission(arrivals: &[u64], cfg: &AdmissionConfig) -> Vec<Vec<usize>> {
    let max_batch = cfg.max_batch.max(1);
    let mut batches = Vec::new();
    let mut i = 0;
    while i < arrivals.len() {
        let close = arrivals[i].saturating_add(cfg.window_ticks);
        let mut batch = Vec::new();
        while i < arrivals.len() && arrivals[i] <= close && batch.len() < max_batch {
            debug_assert!(batch.is_empty() || arrivals[i] >= arrivals[i - 1], "sorted");
            batch.push(i);
            i += 1;
        }
        batches.push(batch);
    }
    batches
}

/// The tick at which a batch's window closes (its virtual admission
/// time): the last member's arrival when the size cap filled the batch,
/// otherwise the window edge.
#[must_use]
pub fn admit_tick(arrivals: &[u64], batch: &[usize], cfg: &AdmissionConfig) -> u64 {
    let first = arrivals[batch[0]];
    let last = arrivals[*batch.last().expect("non-empty batch")];
    if batch.len() >= cfg.max_batch.max(1) {
        last
    } else {
        first.saturating_add(cfg.window_ticks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_groups_nearby_arrivals() {
        let arrivals = [0, 2, 5, 20, 21, 40];
        let cfg = AdmissionConfig {
            window_ticks: 6,
            max_batch: 16,
        };
        let plan = plan_admission(&arrivals, &cfg);
        assert_eq!(plan, vec![vec![0, 1, 2], vec![3, 4], vec![5]]);
        assert_eq!(admit_tick(&arrivals, &plan[0], &cfg), 6);
    }

    #[test]
    fn zero_window_is_sequential_dispatch() {
        let arrivals = [0, 0, 1, 9];
        let cfg = AdmissionConfig {
            window_ticks: 0,
            max_batch: 16,
        };
        let plan = plan_admission(&arrivals, &cfg);
        // Simultaneous arrivals still share the zero-length window.
        assert_eq!(plan, vec![vec![0, 1], vec![2], vec![3]]);
    }

    #[test]
    fn max_batch_closes_the_window_early() {
        let arrivals = [0, 1, 2, 3];
        let cfg = AdmissionConfig {
            window_ticks: 100,
            max_batch: 3,
        };
        let plan = plan_admission(&arrivals, &cfg);
        assert_eq!(plan, vec![vec![0, 1, 2], vec![3]]);
        assert_eq!(admit_tick(&arrivals, &plan[0], &cfg), 2, "filled at t=2");
    }
}
