//! Open-loop synthetic load: deterministic seeded arrivals and query
//! mixes — no wall-clock randomness, so a trace is a pure function of
//! its config and every run over it admits and coalesces identically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::request::{Query, Request};

/// Relative weights of each query kind in the generated mix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryMix {
    pub bfs: u32,
    pub parents: u32,
    pub sssp: u32,
    pub pagerank: u32,
    pub bc: u32,
}

impl Default for QueryMix {
    /// BFS-heavy, the shape the paper's introduction motivates (Graph500
    /// traversal traffic) with a trickle of analytics.
    fn default() -> Self {
        Self {
            bfs: 8,
            parents: 3,
            sssp: 3,
            pagerank: 1,
            bc: 1,
        }
    }
}

impl QueryMix {
    fn total(&self) -> u32 {
        self.bfs + self.parents + self.sssp + self.pagerank + self.bc
    }
}

/// Load-generator parameters.
#[derive(Clone, Copy, Debug)]
pub struct LoadGenConfig {
    pub seed: u64,
    pub n_requests: usize,
    /// Mean inter-arrival gap in ticks (uniform on `0..=2·mean`, so the
    /// mean is exact and bursts happen).
    pub mean_gap_ticks: u64,
    pub mix: QueryMix,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            n_requests: 32,
            mean_gap_ticks: 4,
            mix: QueryMix::default(),
        }
    }
}

/// Generate an arrival-ordered trace over a graph with `n_vertices`
/// vertices. Deterministic in `cfg` and `n_vertices`.
#[must_use]
pub fn generate_trace(cfg: &LoadGenConfig, n_vertices: usize) -> Vec<Request> {
    assert!(n_vertices > 0, "empty graph");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let total = cfg.mix.total().max(1);
    let n = n_vertices as u32;
    let mut tick = 0u64;
    (0..cfg.n_requests as u64)
        .map(|id| {
            if id > 0 {
                tick += rng.gen_range(0..=2 * cfg.mean_gap_ticks);
            }
            let roll = rng.gen_range(0..total);
            let m = &cfg.mix;
            let query = if roll < m.bfs {
                Query::Bfs {
                    source: rng.gen_range(0..n),
                }
            } else if roll < m.bfs + m.parents {
                Query::Parents {
                    source: rng.gen_range(0..n),
                }
            } else if roll < m.bfs + m.parents + m.sssp {
                Query::Sssp {
                    source: rng.gen_range(0..n),
                }
            } else if roll < m.bfs + m.parents + m.sssp + m.pagerank {
                Query::PageRank
            } else {
                Query::Bc {
                    sources: vec![rng.gen_range(0..n), rng.gen_range(0..n)],
                }
            };
            Request::new(id, query).at_tick(tick)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_and_sorted() {
        let cfg = LoadGenConfig::default();
        let a = generate_trace(&cfg, 1000);
        let b = generate_trace(&cfg, 1000);
        assert_eq!(a.len(), cfg.n_requests);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.query, y.query);
            assert_eq!(x.arrival_tick, y.arrival_tick);
        }
        assert!(a.windows(2).all(|w| w[0].arrival_tick <= w[1].arrival_tick));
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_trace(&LoadGenConfig::default(), 1000);
        let b = generate_trace(
            &LoadGenConfig {
                seed: 43,
                ..LoadGenConfig::default()
            },
            1000,
        );
        assert!(
            a.iter()
                .zip(&b)
                .any(|(x, y)| x.query != y.query || x.arrival_tick != y.arrival_tick),
            "seed must matter"
        );
    }
}
