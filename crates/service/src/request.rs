//! Request/response vocabulary of the query service.

use graphblas_algo::{EntryBfs, EntryParents, EntrySssp};
use graphblas_core::{ExecLimits, GrbResult};
use graphblas_matrix::VertexId;
use graphblas_primitives::counters::CounterSnapshot;

/// One graph query. Single-source kinds (BFS / parent BFS / SSSP) are
/// coalescible: same-kind queries admitted together run as one batched
/// traversal. PageRank and BC are whole-graph/multi-source and dispatch
/// solo.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Query {
    /// Depths from `source` (direction-optimized BFS).
    Bfs { source: VertexId },
    /// Min-id parent tree from `source` (Graph500 output).
    Parents { source: VertexId },
    /// Shortest distances from `source` over the weighted graph.
    Sssp { source: VertexId },
    /// Whole-graph PageRank (power iteration).
    PageRank,
    /// Batched Brandes betweenness from the given sources.
    Bc { sources: Vec<VertexId> },
}

/// Coalescing key: queries of the same kind share a batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueryKind {
    Bfs,
    Parents,
    Sssp,
    PageRank,
    Bc,
}

impl QueryKind {
    /// Kinds the executor coalesces into one `MultiVector` batch.
    #[must_use]
    pub fn coalescible(self) -> bool {
        matches!(self, Self::Bfs | Self::Parents | Self::Sssp)
    }
}

impl Query {
    #[must_use]
    pub fn kind(&self) -> QueryKind {
        match self {
            Self::Bfs { .. } => QueryKind::Bfs,
            Self::Parents { .. } => QueryKind::Parents,
            Self::Sssp { .. } => QueryKind::Sssp,
            Self::PageRank => QueryKind::PageRank,
            Self::Bc { .. } => QueryKind::Bc,
        }
    }
}

/// A submitted query with its identity, limits, and (for traces) the
/// arrival tick the admission plan is derived from.
#[derive(Clone, Debug)]
pub struct Request {
    /// Caller-assigned id, echoed on the response.
    pub id: u64,
    pub query: Query,
    /// Per-request limits: installed on this request's private counter
    /// set for the duration of its (possibly coalesced) execution.
    pub limits: ExecLimits,
    /// Arrival time in abstract ticks (0 for directly-submitted queries;
    /// the admission plan of a trace run depends only on these).
    pub arrival_tick: u64,
}

impl Request {
    #[must_use]
    pub fn new(id: u64, query: Query) -> Self {
        Self {
            id,
            query,
            limits: ExecLimits::none(),
            arrival_tick: 0,
        }
    }

    #[must_use]
    pub fn with_limits(mut self, limits: ExecLimits) -> Self {
        self.limits = limits;
        self
    }

    #[must_use]
    pub fn at_tick(mut self, tick: u64) -> Self {
        self.arrival_tick = tick;
        self
    }
}

/// A successful query's payload.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryOutput {
    Bfs(EntryBfs),
    Parents(EntryParents),
    Sssp(EntrySssp),
    PageRank { ranks: Vec<f64>, iters: usize },
    Bc(Vec<f64>),
}

/// The service's answer to one request: the typed result, this request's
/// own counter snapshot (per-request attribution even inside a coalesced
/// batch), and how the request was scheduled.
#[derive(Clone, Debug)]
pub struct Response {
    pub id: u64,
    /// `Ok` payload, or the request's own typed abort
    /// (`Cancelled` / `BudgetExceeded` / `WorkerPanicked`).
    pub result: GrbResult<QueryOutput>,
    /// This request's private counter snapshot.
    pub counters: CounterSnapshot,
    /// Size of the admitted batch this request rode in.
    pub batch_size: usize,
    /// Size of the same-kind coalesced group it executed in (> 1 means
    /// the request shared a batched traversal).
    pub group_size: usize,
    /// The request was re-run solo after its coalesced group hit a
    /// worker panic.
    pub retried_solo: bool,
}
