//! Concurrent graph-query service — the production shape the paper's
//! batched kernels were built for: many independent traversal queries
//! against one shared graph, coalesced into batched push-pull matvecs.
//!
//! The pipeline, layer by layer:
//!
//! * [`request`] — the vocabulary: [`Query`] / [`Request`] / [`Response`].
//!   Every request carries its own [`ExecLimits`](graphblas_core::ExecLimits)
//!   and gets back its own counter snapshot, even when it executed inside
//!   a shared batch.
//! * [`admission`] — windowed micro-batching. The plan is a pure function
//!   of arrival ticks, so a fixed trace admits identically at any lane
//!   count.
//! * [`executor`] — same-kind single-source queries (BFS / parent BFS /
//!   SSSP) coalesce into one batched traversal through the algorithms
//!   crate's entry drivers ([`graphblas_algo::entries`]); PageRank and BC
//!   dispatch solo under `run_guarded`. A tripped request aborts with its
//!   typed error without touching siblings; a worker-chunk panic
//!   de-coalesces the survivors for a solo retry.
//! * [`trace`] / [`stats`] — deterministic trace replay on a virtual
//!   clock, reduced to queries/sec, latency percentiles, batch-size
//!   histogram, and coalescing rate (the `BENCH_serve.json` artifact).
//! * [`loadgen`] — seeded open-loop arrivals; no wall-clock randomness
//!   reaches the results.
//! * [`service`] — the live front: a `Mutex`/`Condvar` queue and a
//!   dispatcher thread admitting under a real-time window.
//!
//! `tests/service_equivalence.rs` pins the core contract: a coalesced
//! request's values *and* counter snapshot are bit-identical to its solo
//! run, at 1/2/8 lanes.

pub mod admission;
pub mod executor;
pub mod loadgen;
pub mod request;
pub mod service;
pub mod stats;
pub mod trace;

pub use admission::{plan_admission, AdmissionConfig};
pub use executor::{execute_batch, ExecOpts, ServiceGraphs};
pub use loadgen::{generate_trace, LoadGenConfig, QueryMix};
pub use request::{Query, QueryKind, QueryOutput, Request, Response};
pub use service::{Service, ServiceConfig, Ticket};
pub use stats::{compute, percentile_ns, ServeStats};
pub use trace::{run_trace, TraceOutcome};
