//! Deterministic trace runner: a virtual clock over arrival ticks plus
//! measured execution time. Admission order, batch composition, values,
//! and per-request counters are pure functions of the trace; only the
//! latency *numbers* reflect the machine.

use std::time::Instant;

use graphblas_primitives::counters::AccessCounters;

use crate::admission::{admit_tick, plan_admission, AdmissionConfig};
use crate::executor::{execute_batch, ExecOpts, ServiceGraphs};
use crate::request::{Request, Response};

/// Outcome of replaying one trace.
#[derive(Clone, Debug)]
pub struct TraceOutcome {
    /// One response per request, in admission (= arrival) order.
    pub responses: Vec<Response>,
    /// Request ids per admitted batch — the composition pin.
    pub batches: Vec<Vec<u64>>,
    /// Per-response latency: virtual completion − arrival, in ns.
    pub latencies_ns: Vec<u128>,
    /// Virtual makespan of the whole trace in ns.
    pub total_ns: u128,
}

/// Replay `trace` (arrival-ordered) through windowed admission and the
/// coalescing executor. The virtual clock starts each batch at
/// `max(previous completion, its admission tick)` and advances by the
/// measured execution time; `tick_ns` converts arrival ticks to ns.
pub fn run_trace(
    graphs: &ServiceGraphs,
    opts: &ExecOpts,
    trace: &[Request],
    adm: &AdmissionConfig,
    tick_ns: u64,
    shared: Option<&AccessCounters>,
) -> TraceOutcome {
    let arrivals: Vec<u64> = trace.iter().map(|r| r.arrival_tick).collect();
    let plan = plan_admission(&arrivals, adm);

    let mut responses = Vec::with_capacity(trace.len());
    let mut latencies_ns = Vec::with_capacity(trace.len());
    let mut batches = Vec::with_capacity(plan.len());
    let mut now_ns: u128 = 0;
    for batch_idxs in &plan {
        let batch: Vec<Request> = batch_idxs.iter().map(|&i| trace[i].clone()).collect();
        batches.push(batch.iter().map(|r| r.id).collect());
        let admit_ns = u128::from(admit_tick(&arrivals, batch_idxs, adm)) * u128::from(tick_ns);
        let start_ns = now_ns.max(admit_ns);
        let t = Instant::now();
        let rs = execute_batch(graphs, opts, &batch, shared);
        now_ns = start_ns + t.elapsed().as_nanos();
        for &i in batch_idxs {
            let arrival_ns = u128::from(arrivals[i]) * u128::from(tick_ns);
            latencies_ns.push(now_ns.saturating_sub(arrival_ns));
        }
        responses.extend(rs);
    }
    TraceOutcome {
        responses,
        batches,
        latencies_ns,
        total_ns: now_ns,
    }
}
