//! Quickstart: build a graph, run direction-optimized BFS, inspect the
//! per-level push/pull decisions the backend made.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use push_pull::algo::bfs::BfsOpts;
use push_pull::gen::rmat::{rmat, RmatParams};
use push_pull::matrix::GraphStats;
use push_pull::prelude::*;

fn main() {
    // A Kronecker graph in the paper's `kron` family, laptop-sized:
    // 2^16 vertices, ~2.8M (directed) edges after cleaning.
    let g = rmat(16, 24, RmatParams::default(), 42);
    let stats = GraphStats::compute(g.csr());
    println!(
        "graph: {} vertices, {} directed edges, max degree {}, pseudo-diameter {}",
        stats.vertices, stats.edges, stats.max_degree, stats.pseudo_diameter
    );

    // One call — the backend chooses push or pull per iteration.
    let result = bfs_with_opts(&g, 0, &BfsOpts::default().traced(), None);
    println!(
        "\nBFS from 0: reached {} vertices in {} levels\n",
        result.reached(),
        result.levels
    );

    println!(
        "{:>5} {:>10} {:>12} {:>10} {:>12}",
        "level", "direction", "frontier", "unvisited", "micros"
    );
    for rec in &result.trace {
        println!(
            "{:>5} {:>10} {:>12} {:>10} {:>12}",
            rec.level,
            format!("{:?}", rec.direction),
            rec.frontier_nnz,
            rec.unvisited,
            rec.micros
        );
    }

    // The three-phase push → pull → push pattern of Figure 5 should be
    // visible above on any scale-free graph.
    let serial = push_pull::baselines::textbook::bfs_serial(&g, 0);
    assert_eq!(result.depths, serial, "matches the serial oracle");
    println!("\nverified against the serial oracle ✓");
}
