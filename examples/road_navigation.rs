//! Shortest-path routing on a road-network mesh — the workload class where
//! the paper shows direction optimization does *not* pay (§7.3): thin
//! frontiers never cross the switch threshold, so the traversal correctly
//! stays push-only for thousands of levels.
//!
//! ```sh
//! cargo run --release --example road_navigation
//! ```

use push_pull::algo::bfs::BfsOpts;
use push_pull::algo::sssp::{dijkstra_oracle, sssp, SsspOpts};
use push_pull::core::Direction;
use push_pull::gen::grid::{road_mesh, RoadParams};
use push_pull::gen::with_uniform_weights;
use push_pull::matrix::GraphStats;
use push_pull::prelude::*;
use std::time::Instant;

fn main() {
    // roadNet-CA-like mesh: bounded degree, enormous diameter.
    let side = 400;
    let g = road_mesh(side, side, RoadParams::default(), 99);
    let stats = GraphStats::compute(g.csr());
    println!(
        "road mesh: {} intersections, {} road segments, pseudo-diameter {}",
        stats.vertices, stats.edges, stats.pseudo_diameter
    );

    // Hop-count BFS: confirm the traversal never leaves push.
    let r = bfs_with_opts(&g, 0, &BfsOpts::default().traced(), None);
    let pulls = r
        .trace
        .iter()
        .filter(|t| t.direction == Direction::Pull)
        .count();
    println!(
        "\nBFS: {} levels, {} of them pull (road frontiers stay under the 1% switch threshold)",
        r.levels, pulls
    );

    // Weighted routing: Bellman-Ford in GraphBLAS form vs. Dijkstra oracle.
    let w = with_uniform_weights(&g, 5);
    let source = 0u32;
    let target = (g.n_vertices() - 1) as u32;
    let t = Instant::now();
    let bf = sssp(&w, source, &SsspOpts::default());
    let t_bf = t.elapsed();
    let t = Instant::now();
    let dj = dijkstra_oracle(&w, source);
    let t_dj = t.elapsed();
    println!(
        "\nroute {source} → {target}: cost {:.4} in {} Bellman-Ford rounds ({t_bf:?}; serial Dijkstra {t_dj:?})",
        bf.dist[target as usize], bf.rounds
    );
    let max_err = bf
        .dist
        .iter()
        .zip(&dj)
        .map(|(a, b)| if a.is_finite() { (a - b).abs() } else { 0.0 })
        .fold(0.0f32, f32::max);
    assert!(
        max_err < 1e-3,
        "Bellman-Ford disagrees with Dijkstra by {max_err}"
    );
    println!("verified against Dijkstra ✓ (max deviation {max_err:.2e})");

    // The contrast the paper draws: on this topology a forced pull-only
    // BFS is catastrophically slower than push-only. Demonstrate on a
    // smaller mesh so the example stays quick.
    let small = road_mesh(120, 120, RoadParams::default(), 7);
    let t = Instant::now();
    let _ = bfs_with_opts(&small, 0, &BfsOpts::default().forced(Direction::Push), None);
    let push_t = t.elapsed();
    let t = Instant::now();
    let _ = bfs_with_opts(&small, 0, &BfsOpts::default().forced(Direction::Pull), None);
    let pull_t = t.elapsed();
    println!(
        "\nforced-direction contrast on a 120×120 mesh: push {push_t:?}, pull {pull_t:?} ({:.1}× slower)",
        pull_t.as_secs_f64() / push_t.as_secs_f64().max(1e-9)
    );
}
