//! The paper's core claim, demonstrated directly at the kernel level:
//! masking gives the row-based matvec an asymptotic speed-up proportional
//! to the output sparsity (Table 1), measured here in *memory accesses*
//! with the library's built-in counters rather than wall clock.
//!
//! ```sh
//! cargo run --release --example masked_matvec
//! ```

use push_pull::core::descriptor::{Descriptor, Direction};
use push_pull::core::ops::BoolOrAnd;
use push_pull::core::vector_ops::reduce_count;
use push_pull::gen::rmat::{rmat, RmatParams};
use push_pull::prelude::*;
use push_pull::primitives::counters::AccessCounters;
use push_pull::primitives::BitVec;

fn main() {
    let g = rmat(15, 16, RmatParams::default(), 1);
    let n = g.n_vertices();
    let d = g.avg_degree();
    println!("matrix: {} rows, {} nnz, d = {:.1}\n", n, g.n_edges(), d);

    // A dense frontier (everything explicit) and masks of varying density.
    let mut f = Vector::from_sparse(n, false, (0..n as u32).collect(), vec![true; n]);
    f.make_dense();
    // Early-exit off: we want the pure masking effect, not masking + the
    // short-circuit OR (that stacking is Table 2's job).
    let desc = Descriptor::new()
        .transpose(true)
        .force(Direction::Pull)
        .early_exit(false);

    println!(
        "{:>12} {:>16} {:>16} {:>10}",
        "nnz(m)", "masked accesses", "unmasked", "ratio"
    );
    for percent in [1usize, 5, 10, 25, 50, 100] {
        let keep = n * percent / 100;
        let mut bits = BitVec::new(n);
        // Spread the allowed rows evenly.
        for i in 0..keep {
            bits.set(i * n / keep.max(1));
        }
        let mask = Mask::new(&bits);

        let masked = AccessCounters::new();
        let out: Vector<bool> =
            mxv(Some(&mask), BoolOrAnd, &g, &f, &desc, Some(&masked)).expect("dims");
        let _ = reduce_count(&out);

        let unmasked = AccessCounters::new();
        let _out2: Vector<bool> =
            mxv(None, BoolOrAnd, &g, &f, &desc, Some(&unmasked)).expect("dims");

        let m = masked.snapshot().matrix;
        let u = unmasked.snapshot().matrix;
        println!(
            "{:>11}% {:>16} {:>16} {:>9.2}×",
            percent,
            m,
            u,
            u as f64 / m.max(1) as f64
        );
    }
    println!(
        "\nThe ratio tracks M/nnz(m) — Table 1's O(dM) vs O(d·nnz(m)), the\n\
         asymptotic speed-up the paper credits masking for (§5.2)."
    );
}
