//! Social-network analytics on a power-law graph — the workload class the
//! paper's introduction motivates (soc-orkut, soc-LiveJournal1).
//!
//! Runs the full §5.6 generality set on one graph: BFS reachability,
//! PageRank (standard vs. adaptive/masked), connected components, triangle
//! count, and a betweenness-centrality batch.
//!
//! ```sh
//! cargo run --release --example social_network
//! ```

use push_pull::algo::bc::betweenness;
use push_pull::algo::cc::{component_count, connected_components};
use push_pull::algo::pagerank::{adaptive_pagerank, pagerank, PageRankOpts};
use push_pull::algo::tricount::triangle_count;
use push_pull::gen::powerlaw::{chung_lu, PowerLawParams};
use push_pull::matrix::GraphStats;
use push_pull::prelude::*;
use std::time::Instant;

fn main() {
    // soc-orkut-like: power-law degrees, a few hub users with thousands of
    // connections, almost everyone within 5 hops.
    let g = chung_lu(
        1 << 15,
        24,
        PowerLawParams {
            gamma: 2.3,
            offset: 10.0,
        },
        7,
    );
    let stats = GraphStats::compute(g.csr());
    println!(
        "social graph: {} users, {} follow edges, biggest hub {} connections",
        stats.vertices, stats.edges, stats.max_degree
    );

    // Reachability from the biggest hub.
    let hub = (0..g.n_vertices())
        .max_by_key(|&v| g.csr().degree(v))
        .expect("non-empty") as u32;
    let t = Instant::now();
    let r = bfs(&g, hub);
    println!(
        "\nBFS from hub {hub}: {} reachable in {} hops ({:?})",
        r.reached(),
        r.levels - 1,
        t.elapsed()
    );

    // Influence: standard vs adaptive (masked) PageRank.
    let opts = PageRankOpts::default();
    let t = Instant::now();
    let standard = pagerank(&g, &opts);
    let t_std = t.elapsed();
    let t = Instant::now();
    let adaptive = adaptive_pagerank(&g, &opts);
    let t_ada = t.elapsed();
    let mut top: Vec<(usize, f64)> = standard.ranks.iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\ntop-5 PageRank users:");
    for (v, r) in top.iter().take(5) {
        println!("  user {v:>6}  rank {r:.6}  degree {}", g.csr().degree(*v));
    }
    println!(
        "standard: {} iters, {} row updates ({t_std:?})",
        standard.iters, standard.row_updates
    );
    println!(
        "adaptive: {} iters, {} row updates ({t_ada:?}) — masking skipped {:.1}% of the work",
        adaptive.iters,
        adaptive.row_updates,
        100.0 * (1.0 - adaptive.row_updates as f64 / standard.row_updates as f64)
    );

    // Community structure proxies.
    let cc = connected_components(&g, 0.01);
    println!(
        "\ncomponents: {} (in {} label-propagation rounds)",
        component_count(&cc.labels),
        cc.rounds
    );
    let t = Instant::now();
    let triangles = triangle_count(&g);
    println!(
        "triangles: {} (masked SpGEMM, {:?})",
        triangles,
        t.elapsed()
    );

    // Brokerage: betweenness from a small source batch.
    let sources: Vec<u32> = (0..8).map(|i| i * 1013 % g.n_vertices() as u32).collect();
    let t = Instant::now();
    let bc = betweenness(&g, &sources);
    let best = bc
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty");
    println!(
        "highest betweenness (batch of {}): user {} with score {:.1} ({:?})",
        sources.len(),
        best.0,
        best.1,
        t.elapsed()
    );
}
